"""Per-worker shared-memory metrics slabs + the parent-side aggregator.

The multi-worker front-end keeps each worker's :class:`~repro.serve.telemetry.ServingTelemetry`
inside that worker's process; the run's only live view used to be "wait
for the process to exit and read a file".  A :class:`MetricsSlab` makes
the numbers observable *while serving*: the parent allocates one
fixed-layout shared-memory block (one slab row per worker, laid out by a
declarative :class:`SlabLayout`), each worker attaches writable and
publishes its counters/gauges/histogram buckets after every batch, and a
parent-side :class:`MetricsAggregator` reads every row torn-free and
merges them into exactly the snapshot dicts the rest of the
observability layer already speaks (:class:`~repro.obs.metrics.Histogram`
snapshot semantics, byte-compatible with the PR 4 schema — see the
equivalence tests).

Torn reads are prevented by a *seqlock* generation word per row: the
writer bumps it to an odd value before touching the row and to the next
even value after; the reader samples it before and after copying and
retries while the two samples disagree or are odd.  No locks, no
syscalls, and the writer never blocks on the reader — exactly the
property a hot scoring loop needs.  (CPython + numpy gives no formal
memory-ordering guarantees, but each slab row has exactly one writer
process and the read side *copies* before validating, so a torn snapshot
is detected and retried rather than consumed.)

The block itself reuses the :class:`~repro.parallel.shared.SharedArrayPack`
allocation surface, so slabs ride the same 64-byte-aligned layout,
PackSpec pickling and resource-tracker discipline as the dataset and
model handoffs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.obs.metrics import Histogram
from repro.parallel.shared import PackSpec, SharedArrayPack

__all__ = [
    "SlabLayout",
    "MetricsSlab",
    "SlabWriter",
    "MetricsAggregator",
    "SERVING_SLAB_LAYOUT",
    "telemetry_to_row",
]

#: How many seqlock retries a reader attempts before reporting a tear.
_MAX_READ_RETRIES = 64


@dataclass(frozen=True)
class SlabLayout:
    """Declarative fixed layout of one metrics slab row.

    Every worker writes the *same* named quantities at the same offsets,
    which is what lets the parent merge rows with plain vectorised sums.

    Attributes:
        counters: Monotonic int64 counter names, in storage order.
        gauges: Float64 last-value gauge names, in storage order.
        histograms: ``(name, bucket_bounds)`` pairs; each contributes a
            ``len(bounds) + 1`` int64 bucket-count vector (last bucket =
            +Inf overflow) and one float64 exact-sum cell per row.
    """

    counters: tuple[str, ...] = ()
    gauges: tuple[str, ...] = ()
    histograms: tuple[tuple[str, tuple[float, ...]], ...] = ()

    def __post_init__(self) -> None:
        names = (list(self.counters) + list(self.gauges)
                 + [name for name, _ in self.histograms])
        if len(names) != len(set(names)):
            raise ValueError("slab metric names must be unique")
        if not names:
            raise ValueError("a slab layout needs at least one metric")

    def to_meta(self) -> dict:
        """JSON-compatible encoding carried inside the PackSpec meta."""
        return {
            "counters": list(self.counters),
            "gauges": list(self.gauges),
            "histograms": [
                [name, [float(b) for b in bounds]]
                for name, bounds in self.histograms
            ],
        }

    @classmethod
    def from_meta(cls, meta: dict) -> "SlabLayout":
        """Rebuild the layout a spec's meta describes (worker side)."""
        return cls(
            counters=tuple(meta["counters"]),
            gauges=tuple(meta["gauges"]),
            histograms=tuple(
                (name, tuple(bounds)) for name, bounds in meta["histograms"]
            ),
        )


#: The serving layout: one row mirrors one worker's ServingTelemetry.
#: ``fallbacks`` flattens the per-reason dict to its total (reasons stay
#: worker-local detail); the latency buckets match
#: :data:`repro.serve.telemetry.DEFAULT_BUCKETS` so merged histograms are
#: byte-compatible with single-process ``LatencyHistogram`` snapshots.
SERVING_SLAB_LAYOUT = SlabLayout(
    counters=("rows_scored", "batches", "requests", "cache_hits",
              "cache_misses", "fallbacks"),
    gauges=("busy_seconds",),
    histograms=(
        ("batch_latency",
         (1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1,
          1.0, 3.0, 10.0)),
    ),
)


def telemetry_to_row(telemetry) -> tuple[np.ndarray, np.ndarray,
                                         list[tuple[np.ndarray, float]]]:
    """Flatten one :class:`ServingTelemetry` into SERVING_SLAB_LAYOUT arrays.

    Returns ``(counters, gauges, [(bucket_counts, total), ...])`` in the
    layout's storage order, ready for :meth:`SlabWriter.publish`.
    """
    counters = np.array(
        [telemetry.rows_scored, telemetry.batches, telemetry.requests,
         telemetry.cache_hits, telemetry.cache_misses,
         sum(telemetry.fallbacks.values())],
        dtype=np.int64,
    )
    gauges = np.array([telemetry.busy_seconds], dtype=np.float64)
    hist = telemetry.batch_latency
    return counters, gauges, [(hist.counts, hist.total)]


class MetricsSlab:
    """One shared block of per-worker metric rows with seqlock reads.

    Parent::

        slab = MetricsSlab.allocate(SERVING_SLAB_LAYOUT, n_workers=4)
        spawn_workers(slab.spec)           # only the spec is pickled
        sample = slab.read_worker(0)       # torn-free dict or None
        slab.dispose()

    Worker::

        writer = MetricsSlab.attach(spec).writer(worker_id)
        writer.publish(counters, gauges, histograms)
    """

    def __init__(self, pack: SharedArrayPack, layout: SlabLayout,
                 n_workers: int):
        self._pack = pack
        self.layout = layout
        self.n_workers = n_workers
        self._arrays = pack.writable_arrays()

    @property
    def spec(self) -> PackSpec:
        """The picklable handle workers attach with."""
        return self._pack.spec

    @classmethod
    def _layouts(cls, layout: SlabLayout,
                 n_workers: int) -> dict[str, tuple[tuple[int, ...], str]]:
        layouts: dict[str, tuple[tuple[int, ...], str]] = {
            "gen": ((n_workers,), "<i8"),
            "heartbeat_unix": ((n_workers,), "<f8"),
            "counters": ((n_workers, len(layout.counters)), "<i8"),
            "gauges": ((n_workers, max(len(layout.gauges), 1)), "<f8"),
        }
        for name, bounds in layout.histograms:
            layouts[f"hist/{name}/counts"] = (
                (n_workers, len(bounds) + 1), "<i8"
            )
            layouts[f"hist/{name}/total"] = ((n_workers,), "<f8")
        return layouts

    @classmethod
    def allocate(cls, layout: SlabLayout, n_workers: int) -> "MetricsSlab":
        """Parent side: one zero-initialised slab row per worker."""
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        pack = SharedArrayPack.allocate(
            cls._layouts(layout, n_workers),
            meta={"slab_layout": layout.to_meta(),
                  "n_workers": int(n_workers)},
        )
        return cls(pack, layout, n_workers)

    @classmethod
    def attach(cls, spec: PackSpec) -> "MetricsSlab":
        """Worker side: writable views of the parent's block."""
        meta = spec.metadata()
        layout = SlabLayout.from_meta(meta["slab_layout"])
        pack = SharedArrayPack.attach(spec, writable=True)
        return cls(pack, layout, int(meta["n_workers"]))

    def writer(self, worker_id: int) -> "SlabWriter":
        """The single-writer handle for one slab row."""
        if not 0 <= worker_id < self.n_workers:
            raise ValueError(f"worker_id {worker_id} out of range "
                             f"[0, {self.n_workers})")
        return SlabWriter(self, worker_id)

    # ------------------------------------------------------------ read side

    def read_worker(self, worker_id: int,
                    allow_torn: bool = False) -> dict | None:
        """One worker's row as a dict, seqlock-validated.

        Returns None for a row that has never been written, or — after
        bounded retries — one that is being written *right now* (the next
        poll will get it).  ``allow_torn=True`` accepts the last state
        regardless, which is correct once the writer process is known
        dead (a death mid-write leaves the generation odd forever).
        """
        arrays = self._arrays
        gen = arrays["gen"]
        for _ in range(_MAX_READ_RETRIES):
            g1 = int(gen[worker_id])
            if g1 == 0:
                return None
            if g1 % 2 == 1 and not allow_torn:
                continue
            sample = self._copy_row(worker_id)
            g2 = int(gen[worker_id])
            if g1 == g2 or allow_torn:
                sample["generation"] = g2
                return sample
        if allow_torn:
            sample = self._copy_row(worker_id)
            sample["generation"] = int(gen[worker_id])
            return sample
        return None

    def _copy_row(self, worker_id: int) -> dict:
        arrays = self._arrays
        sample: dict = {
            "heartbeat_unix": float(arrays["heartbeat_unix"][worker_id]),
            "counters": {
                name: int(value) for name, value in zip(
                    self.layout.counters,
                    np.array(arrays["counters"][worker_id]),
                )
            },
            "gauges": {
                name: float(value) for name, value in zip(
                    self.layout.gauges,
                    np.array(arrays["gauges"][worker_id]),
                )
            },
            "histograms": {},
        }
        for name, bounds in self.layout.histograms:
            sample["histograms"][name] = {
                "bounds": bounds,
                "counts": np.array(arrays[f"hist/{name}/counts"][worker_id]),
                "total": float(arrays[f"hist/{name}/total"][worker_id]),
            }
        return sample

    # ------------------------------------------------------------- cleanup

    def close(self) -> None:
        self._arrays = {}
        self._pack.close()

    def dispose(self) -> None:
        self._arrays = {}
        self._pack.dispose()


class SlabWriter:
    """The one writer of one slab row (lives inside the worker process)."""

    def __init__(self, slab: MetricsSlab, worker_id: int):
        self._slab = slab
        self.worker_id = worker_id
        arrays = slab._arrays
        self._gen = arrays["gen"]
        self._heartbeat = arrays["heartbeat_unix"]
        self._counters = arrays["counters"]
        self._gauges = arrays["gauges"]
        self._hists = [
            (arrays[f"hist/{name}/counts"], arrays[f"hist/{name}/total"])
            for name, _ in slab.layout.histograms
        ]
        self._n_published = 0

    @property
    def n_published(self) -> int:
        return self._n_published

    def publish(
        self,
        counters: np.ndarray,
        gauges: np.ndarray | None = None,
        histograms: list[tuple[np.ndarray, float]] | None = None,
    ) -> None:
        """Overwrite this row with absolute values, seqlock-bracketed.

        Values are *absolute* (the worker's lifetime totals), not deltas
        — so a missed publish is self-healing and the parent needs no
        per-row bookkeeping beyond "absorb the final row when a worker
        dies".
        """
        w = self.worker_id
        self._gen[w] += 1          # odd: row is being written
        try:
            self._counters[w, :] = counters
            if gauges is not None and len(gauges):
                self._gauges[w, :len(gauges)] = gauges
            for (counts, totals), payload in zip(self._hists,
                                                 histograms or ()):
                counts[w, :] = payload[0]
                totals[w] = float(payload[1])
            self._heartbeat[w] = time.time()
        finally:
            self._gen[w] += 1      # even: row is consistent again
        self._n_published += 1

    def publish_telemetry(self, telemetry) -> None:
        """Publish one :class:`ServingTelemetry` (SERVING_SLAB_LAYOUT rows)."""
        counters, gauges, hists = telemetry_to_row(telemetry)
        self.publish(counters, gauges, hists)

    def heartbeat(self) -> None:
        """Touch the liveness clock without republishing metrics."""
        w = self.worker_id
        self._gen[w] += 1
        try:
            self._heartbeat[w] = time.time()
        finally:
            self._gen[w] += 1


@dataclass
class _RetiredTotals:
    """Final rows of dead workers, folded into every later aggregate."""

    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    hist_counts: dict[str, np.ndarray] = field(default_factory=dict)
    hist_totals: dict[str, float] = field(default_factory=dict)

    def absorb(self, layout: SlabLayout, sample: dict) -> None:
        for name in layout.counters:
            self.counters[name] = (self.counters.get(name, 0)
                                   + sample["counters"][name])
        for name in layout.gauges:
            self.gauges[name] = (self.gauges.get(name, 0.0)
                                 + sample["gauges"][name])
        for name, _ in layout.histograms:
            hist = sample["histograms"][name]
            if name in self.hist_counts:
                self.hist_counts[name] = self.hist_counts[name] + hist["counts"]
            else:
                self.hist_counts[name] = np.array(hist["counts"])
            self.hist_totals[name] = (self.hist_totals.get(name, 0.0)
                                      + hist["total"])


class MetricsAggregator:
    """Parent-side merge of every slab row into PR 4 snapshot dicts.

    The merged payload has exactly the shape a
    :class:`~repro.obs.metrics.MetricsRegistry` snapshot gives one
    process — counters summed, histograms rebuilt as a real
    :class:`Histogram` (summed bucket counts + exact summed totals) and
    rendered through its own ``snapshot()``, so percentile/mean/bucket
    semantics are shared by construction, not re-implemented.

    Args:
        slab: The slab to aggregate (parent's allocated handle).
        liveness_timeout_s: Heartbeat age beyond which a worker is
            reported stale in :meth:`liveness`.
    """

    def __init__(self, slab: MetricsSlab, liveness_timeout_s: float = 5.0):
        self.slab = slab
        self.liveness_timeout_s = liveness_timeout_s
        self._retired = _RetiredTotals()
        self._last_good: dict[int, dict] = {}

    # ------------------------------------------------------------- samples

    def read_all(self) -> dict[int, dict]:
        """Latest consistent sample per worker (last good on a torn poll)."""
        for worker_id in range(self.slab.n_workers):
            sample = self.slab.read_worker(worker_id)
            if sample is not None:
                self._last_good[worker_id] = sample
        return dict(self._last_good)

    def absorb_retired(self, worker_id: int) -> None:
        """Fold a dead worker's final row into the aggregate, then zero it.

        Called by the front-end reaper before the replacement worker
        (whose fresh telemetry restarts at zero) reuses the row; without
        this, a respawn would erase the dead worker's contribution from
        the aggregate.  ``allow_torn=True`` because the writer is gone:
        a death mid-write can leave the generation odd forever, and the
        final row is better than dropping the worker's whole history.
        """
        sample = self.slab.read_worker(worker_id, allow_torn=True)
        if sample is None:
            sample = self._last_good.get(worker_id)
        if sample is not None:
            self._retired.absorb(self.slab.layout, sample)
        self._last_good.pop(worker_id, None)
        arrays = self.slab._arrays
        arrays["gen"][worker_id] = 0
        arrays["counters"][worker_id, :] = 0
        arrays["gauges"][worker_id, :] = 0.0
        arrays["heartbeat_unix"][worker_id] = 0.0
        for name, _ in self.slab.layout.histograms:
            arrays[f"hist/{name}/counts"][worker_id, :] = 0
            arrays[f"hist/{name}/total"][worker_id] = 0.0

    # ----------------------------------------------------------- aggregate

    def aggregate(self) -> dict:
        """Merged snapshot: counters/gauges summed, histograms rebuilt.

        Returns ``{"counters": {...}, "gauges": {...}, "histograms":
        {name: Histogram.snapshot()}, "workers_reporting": n}`` —
        the ``metrics`` record shape of the PR 4 run-log schema plus the
        reporting count.
        """
        layout = self.slab.layout
        samples = self.read_all()
        counters = {name: self._retired.counters.get(name, 0)
                    for name in layout.counters}
        gauges = {name: self._retired.gauges.get(name, 0.0)
                  for name in layout.gauges}
        for sample in samples.values():
            for name in layout.counters:
                counters[name] += sample["counters"][name]
            for name in layout.gauges:
                gauges[name] += sample["gauges"][name]
        histograms: dict[str, dict] = {}
        for name, bounds in layout.histograms:
            merged = Histogram(bounds)
            if name in self._retired.hist_counts:
                merged.counts += self._retired.hist_counts[name]
                merged.total += self._retired.hist_totals[name]
            for sample in samples.values():
                hist = sample["histograms"][name]
                merged.counts += hist["counts"]
                merged.total += hist["total"]
            histograms[name] = merged.snapshot()
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "workers_reporting": len(samples),
        }

    def liveness(self) -> dict[str, dict]:
        """Per-worker heartbeat ages keyed by worker id (as strings)."""
        now = time.time()
        samples = self.read_all()
        report: dict[str, dict] = {}
        for worker_id in range(self.slab.n_workers):
            sample = samples.get(worker_id)
            if sample is None or not sample["heartbeat_unix"]:
                report[str(worker_id)] = {"reporting": False,
                                          "age_s": None, "stale": True}
                continue
            age = max(0.0, now - sample["heartbeat_unix"])
            report[str(worker_id)] = {
                "reporting": True,
                "age_s": age,
                "stale": age > self.liveness_timeout_s,
            }
        return report
