"""Health state machine: declarative thresholds → alerts → transitions.

:class:`HealthMonitor` closes the gap between "a monitor computed a
number" and "an operator (or the lifecycle controller) acts on it".
Each poll, the front-end hands it a flat ``{signal_name: value}`` dict
(drift PSI, calibration shift, SLO burns, stale-worker count — anything
numeric); every :class:`HealthRule` compares its signal against warning
and critical thresholds; the overall state is the worst rule outcome,
with hysteresis on the way down so one clean poll doesn't un-page a
flapping service.

Two kinds of records land in the run log (schema v2, validated by
:func:`repro.obs.runlog.validate_record`):

* one :data:`~repro.obs.runlog.ALERT_EVENT` per *onset* of a breach
  (edge-triggered — re-emitted only when severity escalates or after the
  breach clears and re-fires, never once per poll);
* one :data:`~repro.obs.runlog.HEALTH_TRANSITION_EVENT` per state
  change, carrying the rule names that drove it.

Registered ``on_transition`` hooks fire after the event is written;
:class:`~repro.serve.lifecycle.LifecycleController` subscribes one to
make drift-triggered retrains observable end-to-end.  This module stays
serve-agnostic: it knows signals, thresholds and a tracer — not where
the numbers come from.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.obs.runlog import ALERT_EVENT, HEALTH_TRANSITION_EVENT
from repro.obs.tracer import NULL_TRACER

__all__ = ["HealthRule", "HealthMonitor", "DEFAULT_SERVING_RULES"]

#: Health states, in increasing severity order.
HEALTHY, DEGRADED, CRITICAL = "healthy", "degraded", "critical"
_SEVERITY_RANK = {HEALTHY: 0, DEGRADED: 1, CRITICAL: 2}


@dataclass(frozen=True)
class HealthRule:
    """One declarative threshold pair over one named signal.

    Attributes:
        signal: Key looked up in the signals dict passed to ``evaluate``.
        warning: Value at/above which the rule reports *degraded*.
        critical: Value at/above which the rule reports *critical*
            (must be >= ``warning``).
        description: One line for alerts and the runbook.
    """

    signal: str
    warning: float
    critical: float
    description: str = ""

    def __post_init__(self) -> None:
        if self.critical < self.warning:
            raise ValueError(
                f"rule {self.signal}: critical threshold below warning"
            )

    def classify(self, value: float) -> str:
        """healthy / degraded / critical for one observed value."""
        if value >= self.critical:
            return CRITICAL
        if value >= self.warning:
            return DEGRADED
        return HEALTHY


#: Default serving rules; thresholds follow the conventions already in
#: the repo (PSI 0.1/0.25 industry bands as in ``repro.monitor.drift``,
#: burn-rate 1×/10× fast-page pairing) — override per deployment.
DEFAULT_SERVING_RULES = (
    HealthRule("score_psi", warning=0.10, critical=0.25,
               description="worst per-province score-distribution PSI"),
    HealthRule("feature_psi", warning=0.10, critical=0.25,
               description="max per-feature input-drift PSI (DriftGuard)"),
    HealthRule("mean_shift", warning=0.05, critical=0.15,
               description="windowed score-mean shift vs reference"),
    HealthRule("slo_burn", warning=1.0, critical=10.0,
               description="worst SLO burn rate across objectives/windows"),
    HealthRule("stale_workers", warning=1.0, critical=2.0,
               description="workers with stale slab heartbeats"),
)


class HealthMonitor:
    """Evaluates rules each poll, tracks state, emits alerts + hooks.

    Args:
        rules: The declarative thresholds (defaults to serving rules).
        tracer: Run-log sink for alert / health_transition events.
        recovery_polls: Consecutive fully-clean evaluations required
            before the state steps *down* (critical→degraded→healthy
            collapses directly to the evaluated state after the streak).
        clock: Unix-time source (injectable for tests).
    """

    def __init__(
        self,
        rules=DEFAULT_SERVING_RULES,
        tracer=NULL_TRACER,
        recovery_polls: int = 3,
        clock=time.time,
    ):
        names = [r.signal for r in rules]
        if len(names) != len(set(names)):
            raise ValueError("one rule per signal name")
        if recovery_polls < 1:
            raise ValueError("recovery_polls must be >= 1")
        self.rules = tuple(rules)
        self.tracer = tracer
        self.recovery_polls = recovery_polls
        self._clock = clock
        self.state = HEALTHY
        self._active_severity: dict[str, str] = {}
        self._clean_streak = 0
        self._on_transition: list = []
        self.n_alerts = 0
        self.n_transitions = 0

    def on_transition(self, hook) -> None:
        """Register ``hook(from_state, to_state, reasons: list[str])``.

        Hooks run after the transition event is logged; exceptions
        propagate to the caller of :meth:`evaluate` (the collector loop
        guards itself).
        """
        self._on_transition.append(hook)

    # ----------------------------------------------------------- evaluate

    def evaluate(self, signals: dict, detail: dict | None = None) -> str:
        """Classify one poll's signals; emit alerts/transitions as needed.

        Args:
            signals: ``{signal_name: numeric value}``; rules whose signal
                is absent (or None) are skipped — a monitor that has not
                completed a window yet simply doesn't vote.
            detail: Optional per-signal extra alert fields, e.g.
                ``{"score_psi": {"province": "guangdong"}}``.

        Returns:
            The (possibly unchanged) current state.
        """
        detail = detail or {}
        now = self._clock()
        worst = HEALTHY
        breaching: list[str] = []
        for rule in self.rules:
            value = signals.get(rule.signal)
            if value is None:
                self._active_severity.pop(rule.signal, None)
                continue
            severity = rule.classify(float(value))
            previous = self._active_severity.get(rule.signal, HEALTHY)
            if severity == HEALTHY:
                self._active_severity.pop(rule.signal, None)
            else:
                breaching.append(rule.signal)
                if _SEVERITY_RANK[severity] > _SEVERITY_RANK[previous]:
                    self._emit_alert(rule, severity, float(value), now,
                                     detail.get(rule.signal, {}))
                self._active_severity[rule.signal] = severity
            if _SEVERITY_RANK[severity] > _SEVERITY_RANK[worst]:
                worst = severity
        self._step_state(worst, breaching, now)
        return self.state

    def _emit_alert(self, rule: HealthRule, severity: str, value: float,
                    now: float, extra: dict) -> None:
        threshold = rule.critical if severity == CRITICAL else rule.warning
        self.n_alerts += 1
        self.tracer.event(
            ALERT_EVENT,
            monitor=rule.signal,
            severity="critical" if severity == CRITICAL else "warning",
            value=value,
            threshold=threshold,
            unix=now,
            description=rule.description,
            **extra,
        )

    def _step_state(self, evaluated: str, reasons: list[str],
                    now: float) -> None:
        if _SEVERITY_RANK[evaluated] >= _SEVERITY_RANK[self.state]:
            self._clean_streak = 0
            if evaluated != self.state:
                self._transition(evaluated, reasons, now)
            return
        # Stepping down: require a streak of polls at the lower severity.
        self._clean_streak += 1
        if self._clean_streak >= self.recovery_polls:
            self._clean_streak = 0
            self._transition(evaluated, reasons or ["recovered"], now)

    def _transition(self, to_state: str, reasons: list[str],
                    now: float) -> None:
        from_state = self.state
        self.state = to_state
        self.n_transitions += 1
        self.tracer.event(
            HEALTH_TRANSITION_EVENT,
            from_state=from_state,
            to_state=to_state,
            reasons=list(reasons),
            unix=now,
        )
        for hook in self._on_transition:
            hook(from_state, to_state, list(reasons))

    # ----------------------------------------------------------- snapshot

    def snapshot(self) -> dict:
        """JSON-compatible current health (exposition + merged snapshot)."""
        return {
            "state": self.state,
            "active_breaches": dict(sorted(self._active_severity.items())),
            "n_alerts": self.n_alerts,
            "n_transitions": self.n_transitions,
            "recovery_polls": self.recovery_polls,
        }
