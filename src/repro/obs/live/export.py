"""Metric exposition: Prometheus text + JSON snapshot over stdlib HTTP.

:class:`MetricsExporter` owns a :class:`http.server.ThreadingHTTPServer`
on a background thread and serves whatever one ``snapshot_fn()`` returns
— the *live snapshot* dict the front-end assembles (aggregated worker
counters, front-end telemetry, monitors, health; the exact shape is
documented in ``docs/observability.md``).  Three routes:

* ``GET /metrics`` — Prometheus text exposition (version 0.0.4), the
  canonical scrape target;
* ``GET /snapshot`` — the snapshot dict as JSON, for tooling and
  ``repro obs top``;
* ``GET /healthz`` — 200 while the health state is healthy/degraded,
  503 once critical, so a plain load-balancer check pages correctly.

For headless CI (no scraper), :class:`SnapshotFileWriter` appends the
same JSON snapshot to a file on a fixed cadence — the soak smoke
schema-validates those lines after the run.

Everything here is stdlib-only (``http.server``, ``json``,
``threading``) and serve-agnostic: the exporter knows a callable and a
port, not the serving stack.
"""

from __future__ import annotations

import json
import pathlib
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

__all__ = ["MetricsExporter", "SnapshotFileWriter", "render_prometheus"]

_PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _sanitize(name: str) -> str:
    """A Prometheus-legal metric-name fragment."""
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def _line(out: list[str], name: str, value, labels: dict | None = None) -> None:
    if labels:
        rendered = ",".join(
            f'{key}="{str(val)}"' for key, val in sorted(labels.items())
        )
        out.append(f"{name}{{{rendered}}} {value}")
    else:
        out.append(f"{name} {value}")


def _render_histogram(out: list[str], name: str, snap: dict) -> None:
    """One PR 4 histogram snapshot as a Prometheus histogram triplet."""
    buckets = snap.get("buckets", {})
    cumulative = 0
    for key, count in buckets.items():
        if key == "overflow":
            continue
        cumulative += int(count)
        _line(out, f"{name}_bucket", cumulative,
              {"le": key.removeprefix("le_")})
    cumulative += int(buckets.get("overflow", 0))
    _line(out, f"{name}_bucket", cumulative, {"le": "+Inf"})
    _line(out, f"{name}_count", int(snap.get("count", cumulative)))
    total = snap.get("total", snap.get("mean_s", snap.get("mean", 0.0))
            * snap.get("count", 0))
    _line(out, f"{name}_sum", float(total))


def render_prometheus(snapshot: dict, prefix: str = "repro") -> str:
    """Render one live snapshot dict as Prometheus text exposition.

    Tolerant of partial snapshots: every section (``workers``,
    ``frontend``, ``monitors``, ``health``, ``liveness``) is optional,
    so the same renderer serves a bare aggregator or the full plane.
    """
    out: list[str] = []
    workers = snapshot.get("workers", {})
    for name, value in sorted(workers.get("counters", {}).items()):
        _line(out, f"{prefix}_worker_{_sanitize(name)}_total", int(value))
    for name, value in sorted(workers.get("gauges", {}).items()):
        _line(out, f"{prefix}_worker_{_sanitize(name)}", float(value))
    for name, hist in sorted(workers.get("histograms", {}).items()):
        _render_histogram(out, f"{prefix}_worker_{_sanitize(name)}", hist)
    if "workers_reporting" in workers:
        _line(out, f"{prefix}_workers_reporting",
              int(workers["workers_reporting"]))

    frontend = snapshot.get("frontend", {})
    for name, value in sorted(frontend.items()):
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            _line(out, f"{prefix}_frontend_{_sanitize(name)}_total",
                  value)
    if isinstance(frontend.get("request_latency"), dict):
        _render_histogram(out, f"{prefix}_frontend_request_latency",
                          frontend["request_latency"])

    liveness = snapshot.get("liveness", {})
    if liveness:
        stale = sum(1 for entry in liveness.values() if entry.get("stale"))
        _line(out, f"{prefix}_workers_stale", stale)
        for worker_id, entry in sorted(liveness.items()):
            if entry.get("age_s") is not None:
                _line(out, f"{prefix}_worker_heartbeat_age_seconds",
                      float(entry["age_s"]), {"worker": worker_id})

    monitors = snapshot.get("monitors", {})
    drift = monitors.get("score_drift", {})
    if drift:
        _line(out, f"{prefix}_score_psi", float(drift.get("global_psi", 0.0)))
        _line(out, f"{prefix}_score_psi_worst",
              float(drift.get("worst_psi", 0.0)))
        for province, entry in sorted(drift.get("provinces", {}).items()):
            _line(out, f"{prefix}_score_psi_province",
                  float(entry["psi"]), {"province": province})
    calibration = monitors.get("calibration", {})
    if calibration:
        _line(out, f"{prefix}_score_mean",
              float(calibration.get("score_mean", 0.0)))
        _line(out, f"{prefix}_score_mean_shift",
              float(calibration.get("mean_shift", 0.0)))
    for objective, entry in sorted(monitors.get("slo", {}).items()):
        for window, burn in sorted(entry.get("burn_rates", {}).items()):
            _line(out, f"{prefix}_slo_burn_rate", float(burn),
                  {"objective": objective, "window": window})

    health = snapshot.get("health", {})
    if health:
        state = health.get("state", "healthy")
        for candidate in ("healthy", "degraded", "critical"):
            _line(out, f"{prefix}_health_state",
                  1 if state == candidate else 0, {"state": candidate})
        _line(out, f"{prefix}_alerts_total",
              int(health.get("n_alerts", 0)))

    if "unix" in snapshot:
        _line(out, f"{prefix}_snapshot_unix", float(snapshot["unix"]))
    return "\n".join(out) + "\n"


class _Handler(BaseHTTPRequestHandler):
    """Routes /metrics, /snapshot and /healthz; everything else is 404."""

    # Set per-server via the factory in MetricsExporter.start().
    snapshot_fn = staticmethod(lambda: {})

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0]
        try:
            snapshot = self.snapshot_fn()
        except Exception as exc:  # pragma: no cover - defensive
            self._respond(500, "text/plain; charset=utf-8",
                          f"snapshot failed: {exc}\n")
            return
        if path == "/metrics":
            self._respond(200, _PROM_CONTENT_TYPE,
                          render_prometheus(snapshot))
        elif path in ("/snapshot", "/snapshot.json"):
            self._respond(200, "application/json",
                          json.dumps(snapshot, default=str) + "\n")
        elif path == "/healthz":
            state = snapshot.get("health", {}).get("state", "healthy")
            status = 503 if state == "critical" else 200
            self._respond(status, "application/json",
                          json.dumps({"state": state}) + "\n")
        else:
            self._respond(404, "text/plain; charset=utf-8",
                          "routes: /metrics /snapshot /healthz\n")

    def _respond(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, *args) -> None:
        """Silence per-request stderr logging (scrapes are frequent)."""


class MetricsExporter:
    """Background HTTP server exposing one snapshot callable.

    Usage::

        exporter = MetricsExporter(frontend.live_snapshot, port=9100)
        port = exporter.start()      # actual port (0 → ephemeral)
        ...
        exporter.stop()

    Args:
        snapshot_fn: Zero-arg callable returning the JSON-compatible
            live snapshot; called once per request, so it must be cheap
            and thread-safe (the front-end's is).
        port: TCP port; 0 binds an ephemeral port (tests).
        host: Bind address (loopback by default — metrics are internal).
    """

    def __init__(self, snapshot_fn, port: int = 0, host: str = "127.0.0.1"):
        self._snapshot_fn = snapshot_fn
        self._requested_port = port
        self._host = host
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self.port: int | None = None

    def start(self) -> int:
        """Bind and serve on a daemon thread; returns the bound port."""
        if self._server is not None:
            raise RuntimeError("exporter already started")
        snapshot_fn = self._snapshot_fn
        handler = type("BoundHandler", (_Handler,),
                       {"snapshot_fn": staticmethod(snapshot_fn)})
        self._server = ThreadingHTTPServer(
            (self._host, self._requested_port), handler
        )
        self._server.daemon_threads = True
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="metrics-exporter",
            daemon=True,
        )
        self._thread.start()
        return self.port

    def stop(self) -> None:
        """Shut the server down and join the thread (idempotent)."""
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    def __enter__(self) -> "MetricsExporter":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


class SnapshotFileWriter:
    """Appends the live snapshot as JSON lines on a fixed cadence.

    The headless-CI stand-in for a scraper: the soak smoke points this
    at a file, lets it tick through the run, then schema-validates every
    line.  ``flush()`` writes one line immediately (used for the final
    state before shutdown).

    Args:
        snapshot_fn: Same contract as :class:`MetricsExporter`.
        path: Destination file (appended; one JSON object per line).
        interval_s: Seconds between automatic writes.
    """

    def __init__(self, snapshot_fn, path, interval_s: float = 5.0):
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self._snapshot_fn = snapshot_fn
        self.path = pathlib.Path(path)
        self.interval_s = interval_s
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.n_written = 0

    def flush(self) -> None:
        """Write one snapshot line right now."""
        line = json.dumps(self._snapshot_fn(), default=str)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line)
            handle.write("\n")
        self.n_written += 1

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.flush()
            except Exception:  # pragma: no cover - keep the writer alive
                if self._stop.is_set():
                    break

    def start(self) -> "SnapshotFileWriter":
        """Begin periodic writes on a daemon thread."""
        if self._thread is not None:
            raise RuntimeError("snapshot writer already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="snapshot-writer", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, final_flush: bool = True) -> None:
        """Stop the thread; by default write one last snapshot line."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if final_flush:
            self.flush()
