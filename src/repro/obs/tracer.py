"""Hierarchical run tracing: spans, point events and metric dumps.

:class:`Tracer` is the write side of the observability layer.  Code under
instrumentation opens *spans* (timed, nestable regions) and emits *events*
(point records with structured fields); the tracer serializes both —
via a :class:`~repro.obs.runlog.RunLogWriter` or an in-memory buffer —
in the documented run-log schema.

The disabled tracer follows the same null-object pattern as
``StepTimer(enabled=False)``: every method is a guarded no-op and
``span()`` returns a shared reusable null context, so instrumentation is
threaded through hot loops unconditionally at near-zero cost.  Use the
module-level :data:`NULL_TRACER` as the default collaborator.
"""

from __future__ import annotations

import pathlib
import time
from contextlib import contextmanager

from repro.obs.metrics import MetricsRegistry
from repro.obs.runlog import (
    SCHEMA_VERSION,
    RunLogWriter,
    new_run_id,
    validate_record,
)

__all__ = ["Tracer", "NULL_TRACER"]


class _NullContext:
    """Reusable no-op context manager (cheaper than a fresh generator)."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_CONTEXT = _NullContext()


class _BufferSink:
    """In-memory sink used when no path/writer is supplied."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def write(self, record: dict) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass


class Tracer:
    """Produces a structured run log of spans, events and metrics.

    Usage::

        tracer = Tracer(path="run.jsonl")
        tracer.write_manifest(command="train", seed=0)
        with tracer.span("fit", trainer="LightMIRM"):
            tracer.event("epoch", epoch=0, objective=1.23)
        tracer.close()

    Args:
        path: Destination JSONL file; mutually exclusive with ``sink``.
        sink: Pre-built writer (anything with ``write(dict)``/``close()``).
            When neither is given, records buffer in memory and are
            retrievable via :attr:`records`.
        enabled: A disabled tracer is a pure null object: no sink is
            opened, nothing is recorded, every call is a cheap no-op.
    """

    def __init__(
        self,
        path: str | pathlib.Path | None = None,
        sink=None,
        enabled: bool = True,
    ):
        if path is not None and sink is not None:
            raise ValueError("pass either path or sink, not both")
        self.enabled = bool(enabled)
        self.run_id = new_run_id() if self.enabled else ""
        self._sink = None
        self._buffer: list[dict] | None = None
        self._next_span_id = 0
        self._span_stack: list[int] = []
        self._start = 0.0
        self.start_unix = 0.0
        self.metrics = MetricsRegistry()
        if not self.enabled:
            return
        if sink is None:
            if path is not None:
                sink = RunLogWriter(path)
            else:
                sink = _BufferSink()
                self._buffer = sink.records
        self._sink = sink
        self._start = time.perf_counter()
        self.start_unix = time.time()

    # ------------------------------------------------------------ plumbing

    @property
    def records(self) -> list[dict]:
        """Buffered records (only for in-memory tracers)."""
        if self._buffer is None:
            raise AttributeError(
                "records are only buffered when the tracer has no path/sink"
            )
        return self._buffer

    def _now(self) -> float:
        return time.perf_counter() - self._start

    def _write(self, record: dict) -> None:
        self._sink.write(validate_record(record))

    # ------------------------------------------------------------- records

    def write_manifest(self, **fields) -> None:
        """Emit the run-identity record (normally first in the log).

        Accepts the payload of
        :func:`~repro.obs.runlog.run_manifest_fields` or any JSON-
        compatible identity fields.
        """
        if not self.enabled:
            return
        self._write({
            "kind": "manifest",
            "schema": SCHEMA_VERSION,
            "run_id": self.run_id,
            "created_unix": time.time(),
            "fields": fields,
        })

    def event(self, name: str, **fields) -> None:
        """Emit one point event inside the current span (if any)."""
        if not self.enabled:
            return
        self._write({
            "kind": "event",
            "name": name,
            "t_s": self._now(),
            "span": self._span_stack[-1] if self._span_stack else None,
            "fields": fields,
        })

    def span(self, name: str, **fields):
        """Context manager timing one nested region.

        The span record is written when the region closes (so records
        appear in close order; readers sort by ``start_s`` if needed).
        A disabled tracer returns a shared null context.
        """
        if not self.enabled:
            return _NULL_CONTEXT
        return self._span(name, fields)

    @contextmanager
    def _span(self, name: str, fields: dict):
        span_id = self._next_span_id
        self._next_span_id += 1
        parent = self._span_stack[-1] if self._span_stack else None
        self._span_stack.append(span_id)
        start = self._now()
        try:
            yield span_id
        finally:
            self._span_stack.pop()
            self._write({
                "kind": "span",
                "name": name,
                "id": span_id,
                "parent": parent,
                "start_s": start,
                "dur_s": self._now() - start,
                "fields": fields,
            })

    def record_span(self, name: str, dur_s: float, **fields) -> None:
        """Emit a span for a region timed externally (ends now).

        Used by the :class:`~repro.timing.StepTimer` bridge: the timer
        already measured the step, the tracer only serializes it.
        """
        if not self.enabled:
            return
        now = self._now()
        span_id = self._next_span_id
        self._next_span_id += 1
        self._write({
            "kind": "span",
            "name": name,
            "id": span_id,
            "parent": self._span_stack[-1] if self._span_stack else None,
            "start_s": now - dur_s,
            "dur_s": dur_s,
            "fields": fields,
        })

    def write_metrics(self, registry: MetricsRegistry | None = None) -> None:
        """Dump a metrics registry snapshot (defaults to :attr:`metrics`)."""
        if not self.enabled:
            return
        registry = registry if registry is not None else self.metrics
        self._write({
            "kind": "metrics",
            "t_s": self._now(),
            "fields": registry.snapshot(),
        })

    def merge_child_records(
        self,
        records: list[dict],
        child_start_unix: float | None = None,
        **extra_fields,
    ) -> None:
        """Fold another tracer's buffered records into this run log.

        This is how parallel experiment workers report back: each worker
        traces into an in-memory buffer, returns ``tracer.records`` (plus
        its ``start_unix``), and the parent merges them so a traced
        ``--jobs N`` run still yields *one* schema-valid log that
        reconstructs Table III step timings.

        Span ids are renumbered into this tracer's id space, child root
        spans are re-parented under the currently open span, timestamps
        are shifted onto this tracer's clock via the wall-clock offset,
        and ``extra_fields`` (e.g. ``worker=3``) are stamped onto every
        merged record's fields.  Child manifests are dropped — a log has
        one manifest.

        Args:
            records: The child tracer's records, in child write order.
            child_start_unix: The child tracer's :attr:`start_unix`; when
                omitted, child times are kept relative to *this* tracer's
                start (offset 0).
            **extra_fields: Identity fields added to every merged record.
        """
        if not self.enabled:
            return
        offset = 0.0
        if child_start_unix is not None and self.start_unix:
            offset = child_start_unix - self.start_unix
        # Spans are written at close, so a child's events can reference
        # span ids that appear later in the buffer — renumber every span
        # id first, then rewrite.
        id_map: dict[int, int] = {}
        for record in records:
            if record["kind"] == "span":
                id_map[record["id"]] = self._next_span_id
                self._next_span_id += 1
        current = self._span_stack[-1] if self._span_stack else None
        for record in records:
            kind = record["kind"]
            if kind == "manifest":
                continue
            merged = dict(record)
            fields = dict(merged.get("fields", {}))
            fields.update(extra_fields)
            merged["fields"] = fields
            if kind == "span":
                merged["id"] = id_map[record["id"]]
                parent = record["parent"]
                merged["parent"] = (
                    id_map.get(parent, current) if parent is not None
                    else current
                )
                merged["start_s"] = float(record["start_s"]) + offset
            elif kind == "event":
                merged["t_s"] = float(record["t_s"]) + offset
                span = record["span"]
                merged["span"] = (
                    id_map.get(span, current) if span is not None else current
                )
            elif kind == "metrics":
                merged["t_s"] = float(record["t_s"]) + offset
            self._write(merged)

    # ------------------------------------------------------------- bridges

    def attach_timer(self, timer) -> None:
        """Mirror a :class:`~repro.timing.StepTimer` into the run log.

        Every ``timer.step(...)`` occurrence becomes a ``step:<name>``
        span and every epoch an ``epoch_time`` event, so Table III per-
        step timings are reconstructable from the log alone.
        """
        if not self.enabled:
            return
        timer.on_step = lambda name, seconds: self.record_span(
            f"step:{name}", seconds
        )
        timer.on_epoch = lambda seconds: self.event(
            "epoch_time", seconds=seconds
        )

    def close(self) -> None:
        """Flush and close the underlying sink (idempotent)."""
        if self._sink is not None:
            self._sink.close()
            self._sink = None
            self.enabled = False

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: Shared disabled tracer — the default collaborator everywhere.
NULL_TRACER = Tracer(enabled=False)
