"""Run-log serialization: the JSONL schema, writer, reader and manifest.

A *run log* is a JSON-Lines file: one JSON object per line, each with a
``kind`` discriminator.  The schema (version :data:`SCHEMA_VERSION`) has
four record kinds:

``manifest``
    First record of every log.  ``schema`` (int), ``run_id`` (str),
    ``created_unix`` (float) and ``fields`` — the run's identity: command,
    trainer/config, seed, ``git`` describe, dataset fingerprint.
``span``
    One closed span.  ``name``, ``id`` (int, unique per log), ``parent``
    (int or null), ``start_s``/``dur_s`` (seconds; ``start_s`` relative to
    tracer start) and free-form ``fields``.
``event``
    One point event.  ``name``, ``t_s`` (seconds since tracer start),
    ``span`` (enclosing span id or null) and ``fields``.
``metrics``
    A :class:`~repro.obs.metrics.MetricsRegistry` snapshot: ``t_s`` and
    ``fields`` (the snapshot payload).

``docs/observability.md`` documents the schema with examples;
:func:`validate_record` is the single source of truth for required keys
and is applied to every record read by :class:`RunLogReader`.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import platform
import subprocess
import time
import uuid
from dataclasses import is_dataclass, asdict

import numpy as np

__all__ = [
    "SCHEMA_VERSION",
    "LIFECYCLE_SPAN",
    "LIFECYCLE_STAGE_EVENT",
    "ALERT_EVENT",
    "HEALTH_TRANSITION_EVENT",
    "TUNE_SPAN",
    "TUNE_TRIAL_EVENT",
    "TUNE_RUNG_EVENT",
    "TUNE_ENCODE_SPAN",
    "TUNE_CACHE_EVENT",
    "RunLogWriter",
    "RunLog",
    "RunLogReader",
    "SchemaError",
    "validate_record",
    "run_manifest_fields",
    "dataset_fingerprint",
    "git_describe",
]

#: Version of the run-log record schema written by this module.
#: v2 (additive over v1): well-known ``alert`` / ``health_transition``
#: event names gain required-field validation (see
#: :data:`_REQUIRED_EVENT_FIELDS`); every v1 log remains valid under v2.
SCHEMA_VERSION = 2

#: Well-known serving-lifecycle names: a drift recovery runs inside one
#: ``LIFECYCLE_SPAN`` span and emits one ``LIFECYCLE_STAGE_EVENT`` per
#: state transition (``stage`` field: drift_detected, retraining,
#: evaluating, promoting, promoted, rolled_back, aborted) — so
#: ``repro obs report`` replays the drift→retrain→promote loop verbatim.
LIFECYCLE_SPAN = "serve_lifecycle"
LIFECYCLE_STAGE_EVENT = "lifecycle_stage"

#: Well-known hyper-parameter-search names: one ``TUNE_SPAN`` span wraps
#: each trainer's search; every completed (trial, rung) evaluation emits
#: one ``TUNE_TRIAL_EVENT`` (params, seed, budget, per-environment
#: scores — the resumable state of the search) and every rung close one
#: ``TUNE_RUNG_EVENT`` (evaluated + promoted trial ids).
TUNE_SPAN = "tune_search"
TUNE_TRIAL_EVENT = "tune_trial"
TUNE_RUNG_EVENT = "tune_rung"

#: Well-known joint-search names (additive under schema v2): each batch
#: of distinct-extractor encodes runs inside one ``TUNE_ENCODE_SPAN``
#: span, and the extractor-encoding cache emits one ``TUNE_CACHE_EVENT``
#: per lookup or lifecycle step (``action`` field: hit, miss, publish,
#: evict) keyed by the encoding's content ``fingerprint`` — so the run
#: log alone reconstructs the cache's hit-rate, byte footprint and the
#: encode seconds the search saved.
TUNE_ENCODE_SPAN = "tune_encode"
TUNE_CACHE_EVENT = "tune_cache"

#: Legal values of a ``tune_cache`` event's ``action`` field.
_CACHE_ACTIONS = ("hit", "miss", "publish", "evict")

#: Well-known live-health names (schema v2): the serving
#: :class:`~repro.obs.live.health.HealthMonitor` emits one
#: ``ALERT_EVENT`` per threshold breach (``monitor``, ``severity``,
#: ``value``, ``threshold``, ``unix`` + free detail such as
#: ``province``) and one ``HEALTH_TRANSITION_EVENT`` per state change
#: (``from_state``, ``to_state``, ``reasons``, ``unix``) — so an
#: operator can replay drift → alert → critical → recovery from the
#: log alone.
ALERT_EVENT = "alert"
HEALTH_TRANSITION_EVENT = "health_transition"

#: Required keys per record kind (beyond the ``kind`` discriminator).
_REQUIRED_KEYS: dict[str, tuple[str, ...]] = {
    "manifest": ("schema", "run_id", "created_unix", "fields"),
    "span": ("name", "id", "parent", "start_s", "dur_s", "fields"),
    "event": ("name", "t_s", "span", "fields"),
    "metrics": ("t_s", "fields"),
}

#: Schema v2: required ``fields`` keys for well-known event names.
#: Additive — events with other names carry free-form fields as in v1.
_REQUIRED_EVENT_FIELDS: dict[str, tuple[str, ...]] = {
    ALERT_EVENT: ("monitor", "severity", "value", "threshold", "unix"),
    HEALTH_TRANSITION_EVENT: ("from_state", "to_state", "reasons", "unix"),
    TUNE_CACHE_EVENT: ("fingerprint", "action"),
}

#: Legal values for the constrained alert/health fields.
_ALERT_SEVERITIES = ("warning", "critical")
_HEALTH_STATES = ("healthy", "degraded", "critical")


class SchemaError(ValueError):
    """A run-log record violates the documented schema."""


def validate_record(record: object, line: int | None = None) -> dict:
    """Check one decoded record against the schema; returns it on success.

    Args:
        record: The decoded JSON value of one line.
        line: Optional 1-based line number for error messages.

    Raises:
        SchemaError: On a non-object record, unknown kind or missing key.
    """
    where = f"line {line}: " if line is not None else ""
    if not isinstance(record, dict):
        raise SchemaError(f"{where}record is not a JSON object")
    kind = record.get("kind")
    if kind not in _REQUIRED_KEYS:
        raise SchemaError(
            f"{where}unknown record kind {kind!r} "
            f"(known: {sorted(_REQUIRED_KEYS)})"
        )
    missing = [k for k in _REQUIRED_KEYS[kind] if k not in record]
    if missing:
        raise SchemaError(f"{where}{kind} record is missing keys {missing}")
    if not isinstance(record["fields"], dict):
        raise SchemaError(f"{where}{kind} record 'fields' is not an object")
    if kind == "event" and record["name"] in _REQUIRED_EVENT_FIELDS:
        fields = record["fields"]
        name = record["name"]
        missing = [k for k in _REQUIRED_EVENT_FIELDS[name]
                   if k not in fields]
        if missing:
            raise SchemaError(
                f"{where}{name} event fields are missing keys {missing}"
            )
        if (name == ALERT_EVENT
                and fields["severity"] not in _ALERT_SEVERITIES):
            raise SchemaError(
                f"{where}alert severity {fields['severity']!r} not in "
                f"{_ALERT_SEVERITIES}"
            )
        if (name == TUNE_CACHE_EVENT
                and fields["action"] not in _CACHE_ACTIONS):
            raise SchemaError(
                f"{where}tune_cache action {fields['action']!r} not in "
                f"{_CACHE_ACTIONS}"
            )
        if name == HEALTH_TRANSITION_EVENT:
            for key in ("from_state", "to_state"):
                if fields[key] not in _HEALTH_STATES:
                    raise SchemaError(
                        f"{where}health_transition {key} "
                        f"{fields[key]!r} not in {_HEALTH_STATES}"
                    )
    return record


def _json_default(value):
    """Serialize numpy scalars/arrays and dataclasses; last resort str()."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if is_dataclass(value) and not isinstance(value, type):
        return asdict(value)
    return str(value)


class RunLogWriter:
    """Appends schema-conforming records to a JSONL file.

    Usage (normally owned by a :class:`~repro.obs.tracer.Tracer`)::

        with RunLogWriter(path) as log:
            log.write({"kind": "event", ...})
    """

    def __init__(self, path: str | pathlib.Path):
        self.path = pathlib.Path(path)
        self._handle = self.path.open("w", encoding="utf-8")
        self._n_written = 0

    @property
    def n_written(self) -> int:
        return self._n_written

    def write(self, record: dict) -> None:
        """Serialize one record as a compact JSON line."""
        if self._handle is None:
            raise RuntimeError(f"run log {self.path} is closed")
        self._handle.write(
            json.dumps(record, separators=(",", ":"), default=_json_default)
        )
        self._handle.write("\n")
        self._n_written += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunLogWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class RunLog:
    """Decoded, validated run log with query helpers.

    Attributes:
        path: Source file (None for in-memory logs).
        records: Every record, in file order.
    """

    def __init__(self, records: list[dict],
                 path: pathlib.Path | None = None):
        self.records = records
        self.path = path

    @property
    def manifest(self) -> dict | None:
        """The manifest record, or None for manifest-less logs."""
        for record in self.records:
            if record["kind"] == "manifest":
                return record
        return None

    def events(self, name: str | None = None) -> list[dict]:
        """Event records, optionally filtered by name."""
        return [
            r for r in self.records
            if r["kind"] == "event" and (name is None or r["name"] == name)
        ]

    def spans(self, name: str | None = None) -> list[dict]:
        """Span records, optionally filtered by name."""
        return [
            r for r in self.records
            if r["kind"] == "span" and (name is None or r["name"] == name)
        ]

    def metrics_snapshots(self) -> list[dict]:
        """All metrics records, in file order."""
        return [r for r in self.records if r["kind"] == "metrics"]

    def curve(self, event_name: str, field: str) -> list[tuple[int, float]]:
        """(epoch, value) pairs of one numeric field over epoch-like events.

        Events without the field (or without an ``epoch`` field) are
        skipped, so partially-instrumented logs still render.
        """
        points = []
        for record in self.events(event_name):
            fields = record["fields"]
            if "epoch" in fields and field in fields:
                points.append((int(fields["epoch"]), float(fields[field])))
        return points

    def __len__(self) -> int:
        return len(self.records)


class RunLogReader:
    """Reads + validates a JSONL run log into a :class:`RunLog`."""

    @staticmethod
    def read(path: str | pathlib.Path) -> RunLog:
        """Decode every line, validating each record against the schema.

        Raises:
            SchemaError: On malformed JSON or schema violations (with the
                offending 1-based line number).
        """
        path = pathlib.Path(path)
        records: list[dict] = []
        with path.open("r", encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    decoded = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise SchemaError(
                        f"line {line_no}: invalid JSON ({exc})"
                    ) from exc
                records.append(validate_record(decoded, line=line_no))
        return RunLog(records, path=path)


# ---------------------------------------------------------------- manifest


def git_describe() -> str | None:
    """``git describe --always --dirty`` of the working tree, if available."""
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    described = out.stdout.strip()
    return described if out.returncode == 0 and described else None


def dataset_fingerprint(dataset) -> dict:
    """Stable content fingerprint of a :class:`~repro.data.dataset.LoanDataset`.

    Hashes the shapes and raw bytes of every array column, so two runs on
    byte-identical data share a fingerprint regardless of file path.

    Returns:
        ``{"n_samples", "n_features", "sha256"}`` (hash truncated to 16
        hex chars — collision resistance is not a goal, change detection is).
    """
    digest = hashlib.sha256()
    for column in ("features", "labels", "provinces", "years", "halves"):
        array = np.ascontiguousarray(getattr(dataset, column))
        digest.update(column.encode())
        digest.update(str(array.shape).encode())
        digest.update(str(array.dtype).encode())
        digest.update(array.tobytes())
    return {
        "n_samples": int(dataset.n_samples),
        "n_features": int(dataset.n_features),
        "sha256": digest.hexdigest()[:16],
    }


def run_manifest_fields(
    command: str,
    config: object = None,
    seed: int | None = None,
    dataset=None,
    **extra,
) -> dict:
    """Standard manifest ``fields`` payload for one traced run.

    Args:
        command: What produced the log (e.g. ``"train"``, ``"verify"``).
        config: Optional config dataclass/dict recorded verbatim.
        seed: Optional seed of the run.
        dataset: Optional :class:`LoanDataset` to fingerprint.
        **extra: Additional identity fields (data path, method name, ...).

    Returns:
        JSON-compatible dict with ``command``, ``python``, ``git`` plus
        whichever optional fields were supplied.
    """
    fields: dict = {
        "command": command,
        "python": platform.python_version(),
        "git": git_describe(),
    }
    if config is not None:
        if is_dataclass(config) and not isinstance(config, type):
            config = asdict(config)
        fields["config"] = config
    if seed is not None:
        fields["seed"] = int(seed)
    if dataset is not None:
        fields["dataset"] = dataset_fingerprint(dataset)
    fields.update(extra)
    return fields


def new_run_id() -> str:
    """Unique id of one traced run (time-prefixed for sortable file names)."""
    return f"{int(time.time())}-{uuid.uuid4().hex[:8]}"
