"""Zero-copy shared-memory handoff of numpy/CSR data to worker processes.

The experiment fan-out repeats training dozens of times over the *same*
encoded design matrix.  Pickling that matrix into every worker would copy
it once per task; instead :class:`SharedArrayPack` lays every array out in
one ``multiprocessing.shared_memory`` block and ships only a tiny
:class:`PackSpec` (block name + offset table) through the task pipe.
Workers attach and get numpy views straight into the block — zero copies,
regardless of the pool's start method.

Layout: arrays are concatenated back to back, each offset aligned to 64
bytes (cache line) so attached views keep the parent's alignment.  CSR
matrices are stored as their three backing arrays plus the logical shape;
:func:`environments_to_arrays` / :func:`environments_from_arrays` round-
trip whole per-province environment lists (sparse or dense features).

Attached views are marked read-only: every worker maps the *same*
physical pages, so an accidental in-place write would corrupt its
siblings' inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np
from scipy import sparse

from repro.data.dataset import EnvironmentData

__all__ = [
    "ArrayEntry",
    "PackSpec",
    "SharedArrayPack",
    "PackCache",
    "environments_to_arrays",
    "environments_from_arrays",
    "pack_train_test",
    "ragged_to_arrays",
    "ragged_from_arrays",
]

#: Alignment of every array inside the block, in bytes.
_ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


@dataclass(frozen=True)
class ArrayEntry:
    """Location of one array inside the shared block."""

    key: str
    dtype: str
    shape: tuple[int, ...]
    offset: int

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape)))


@dataclass(frozen=True)
class PackSpec:
    """Everything a worker needs to attach: block name + offset table.

    ``meta`` carries small JSON-like metadata describing how to
    reassemble higher-level objects (e.g. CSR shapes, environment names);
    it must stay tiny — the point is that only *this* object is pickled.
    """

    shm_name: str
    entries: tuple[ArrayEntry, ...]
    meta: tuple[tuple[str, object], ...] = ()

    def metadata(self) -> dict:
        return dict(self.meta)


class SharedArrayPack:
    """A named shared-memory block holding a keyed set of numpy arrays.

    Usage (parent)::

        pack = SharedArrayPack.pack({"binned": binned, "grad": grad})
        engine.map(fn, tasks, initializer=attach_fn,
                   initargs=(pack.spec,))
        ...
        pack.dispose()          # close + unlink when workers are done

    Usage (worker)::

        pack = SharedArrayPack.attach(spec)
        arrays = pack.arrays()  # {"binned": <view>, "grad": <view>}
    """

    def __init__(self, shm: shared_memory.SharedMemory, spec: PackSpec,
                 owner: bool, writable: bool = False):
        self._shm = shm
        self.spec = spec
        self._owner = owner
        self._writable = owner or writable

    # -------------------------------------------------------- construction

    @classmethod
    def pack(cls, arrays: dict[str, np.ndarray],
             meta: dict | None = None) -> "SharedArrayPack":
        """Copy the given arrays into one new shared block (once)."""
        entries: list[ArrayEntry] = []
        offset = 0
        contiguous = {
            key: np.ascontiguousarray(array) for key, array in arrays.items()
        }
        for key, array in contiguous.items():
            offset = _aligned(offset)
            entries.append(ArrayEntry(key=key, dtype=array.dtype.str,
                                      shape=tuple(array.shape),
                                      offset=offset))
            offset += array.nbytes
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        for entry, array in zip(entries, contiguous.values()):
            view = np.ndarray(entry.shape, dtype=entry.dtype,
                              buffer=shm.buf, offset=entry.offset)
            view[...] = array
        spec = PackSpec(
            shm_name=shm.name,
            entries=tuple(entries),
            meta=tuple(sorted((meta or {}).items())),
        )
        return cls(shm, spec, owner=True)

    @classmethod
    def allocate(cls, layouts: dict[str, tuple[tuple[int, ...], str]],
                 meta: dict | None = None) -> "SharedArrayPack":
        """Create an empty block to be filled incrementally.

        The streamed binning/packing path builds datasets too large to
        exist as ordinary arrays first: it allocates the block up front
        (shapes are known before any data is) and writes one chunk at a
        time through :meth:`writable_arrays`.

        Args:
            layouts: Mapping ``key -> (shape, dtype_str)``.
            meta: Small JSON-like metadata, as in :meth:`pack`.

        Returns:
            An owning pack whose arrays are zero-initialised (fresh shared
            memory is zero-filled by the OS).
        """
        entries: list[ArrayEntry] = []
        offset = 0
        for key, (shape, dtype) in layouts.items():
            offset = _aligned(offset)
            entries.append(ArrayEntry(key=key, dtype=np.dtype(dtype).str,
                                      shape=tuple(int(s) for s in shape),
                                      offset=offset))
            offset += entries[-1].nbytes
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        spec = PackSpec(
            shm_name=shm.name,
            entries=tuple(entries),
            meta=tuple(sorted((meta or {}).items())),
        )
        return cls(shm, spec, owner=True)

    @classmethod
    def attach(cls, spec: PackSpec, writable: bool = False) -> "SharedArrayPack":
        """Attach to an existing block by its spec (no data copied).

        Attaching re-registers the segment with the resource tracker
        (CPython registers unconditionally, create or attach).  Pool
        workers share the owner's tracker process, where registration is
        set-based, so the duplicate is a no-op — and the owner's
        :meth:`dispose` remains the single unlink.  Do *not* "fix" this
        with ``resource_tracker.unregister``: that removes the owner's
        own entry and the tracker then complains at unlink time.

        Args:
            writable: Opt in to :meth:`writable_arrays` from the attached
                side.  Dataset handoff must stay read-only (siblings map
                the same pages); the live metrics slabs are the exception
                — each worker writes only its own disjoint slab row, and
                the seqlock generation word makes parent reads torn-free.
        """
        return cls(shared_memory.SharedMemory(name=spec.shm_name), spec,
                   owner=False, writable=writable)

    # -------------------------------------------------------------- access

    def arrays(self) -> dict[str, np.ndarray]:
        """Zero-copy read-only views of every packed array."""
        views: dict[str, np.ndarray] = {}
        for entry in self.spec.entries:
            view = np.ndarray(entry.shape, dtype=entry.dtype,
                              buffer=self._shm.buf, offset=entry.offset)
            view.setflags(write=False)
            views[entry.key] = view
        return views

    def writable_arrays(self) -> dict[str, np.ndarray]:
        """Writable views for incremental fills.

        Available to the process that :meth:`allocate`-d the block and to
        workers that attached with ``writable=True`` (the metrics-slab
        path); plain dataset attaches must keep using the read-only
        :meth:`arrays`.
        """
        if not self._writable:
            raise RuntimeError(
                "writable views are owner-only; workers attach read-only "
                "(or pass attach(spec, writable=True) for slab writers)"
            )
        views: dict[str, np.ndarray] = {}
        for entry in self.spec.entries:
            views[entry.key] = np.ndarray(entry.shape, dtype=entry.dtype,
                                          buffer=self._shm.buf,
                                          offset=entry.offset)
        return views

    @property
    def nbytes(self) -> int:
        return self._shm.size

    # ------------------------------------------------------------- cleanup

    def close(self) -> None:
        """Detach this process's mapping (views become invalid)."""
        try:
            self._shm.close()
        except BufferError:
            # Live numpy views still reference the buffer; leave the
            # mapping in place — process exit reclaims it.
            pass

    def dispose(self) -> None:
        """Owner cleanup: detach and remove the block from the system."""
        self.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "SharedArrayPack":
        return self

    def __exit__(self, *exc) -> None:
        self.dispose()


# -------------------------------------------------------------- pack cache


class PackCache:
    """Refcounted, LRU-evicting store of owned :class:`SharedArrayPack`\\ s.

    The extractor-encoding cache (and any future keyed pack reuse) needs
    two lifetime rules a plain dict cannot give:

    * **Pinning** — a pack stays resident while any in-flight task may
      attach to it.  :meth:`pin`/:meth:`unpin` count leases; a pinned
      entry is never evicted, so the byte budget can transiently
      overshoot while leases are held (freed at the next
      :meth:`evict_to_budget` once unpinned).
    * **LRU under a byte budget** — with ``max_bytes`` set, unpinned
      entries are disposed least-recently-used-first until the total
      fits.  Disposal unlinks the shared block; processes still holding
      a mapping keep their pages until they detach (POSIX semantics), so
      eviction can never corrupt a straggling reader.

    The cache owns every inserted pack: :meth:`clear` (or eviction)
    disposes them, so callers must not dispose a pack they handed over.
    """

    def __init__(self, max_bytes: int | None = None):
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be >= 0 or None")
        self.max_bytes = max_bytes
        self._entries: dict[str, dict] = {}  # insertion order = LRU order
        self.evictions = 0

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> list[str]:
        """Cached keys, least-recently-used first."""
        return list(self._entries)

    @property
    def total_bytes(self) -> int:
        return sum(e["nbytes"] for e in self._entries.values())

    def put(self, key: str, pack: SharedArrayPack,
            nbytes: int | None = None) -> None:
        """Insert an owned pack under a key (most-recently-used position).

        Raises:
            KeyError: If the key is already cached — the caller raced
                itself; look the entry up first.
        """
        if key in self._entries:
            raise KeyError(f"pack {key!r} already cached")
        self._entries[key] = {
            "pack": pack,
            "nbytes": int(pack.nbytes if nbytes is None else nbytes),
            "pins": 0,
        }

    def get(self, key: str) -> SharedArrayPack | None:
        """The cached pack, refreshed to most-recently-used; None on miss."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        self._entries[key] = self._entries.pop(key)  # move to MRU end
        return entry["pack"]

    def pin(self, key: str) -> SharedArrayPack:
        """Lease a pack: refresh LRU position and block its eviction.

        Raises:
            KeyError: On a missing key.
        """
        pack = self.get(key)
        if pack is None:
            raise KeyError(f"pack {key!r} not cached")
        self._entries[key]["pins"] += 1
        return pack

    def unpin(self, key: str) -> None:
        """Release one lease taken by :meth:`pin`.

        Raises:
            KeyError: On a missing key.
            ValueError: If the entry has no outstanding lease.
        """
        entry = self._entries[key]
        if entry["pins"] <= 0:
            raise ValueError(f"pack {key!r} is not pinned")
        entry["pins"] -= 1

    def pins(self, key: str) -> int:
        """Outstanding lease count of a cached key."""
        return self._entries[key]["pins"]

    def evict_to_budget(self) -> list[str]:
        """Dispose unpinned LRU entries until the byte budget fits.

        Returns:
            Evicted keys, in eviction order (empty without a budget).
        """
        if self.max_bytes is None:
            return []
        evicted = []
        while self.total_bytes > self.max_bytes:
            victim = next(
                (k for k, e in self._entries.items() if e["pins"] == 0),
                None,
            )
            if victim is None:
                break  # everything live is pinned; overshoot until unpin
            self._entries.pop(victim)["pack"].dispose()
            self.evictions += 1
            evicted.append(victim)
        return evicted

    def clear(self) -> None:
        """Dispose every cached pack (pinned or not) and empty the cache."""
        for entry in self._entries.values():
            entry["pack"].dispose()
        self._entries.clear()


# ---------------------------------------------------------- ragged arrays


def ragged_to_arrays(
    parts: list[np.ndarray], prefix: str, dtype: np.dtype | type | str,
) -> dict[str, np.ndarray]:
    """Flatten a ragged list of 1-D arrays into two packable arrays.

    A pack holds fixed-shape entries, but several model components are
    naturally ragged (per-feature bin edges, per-tree feature subsets).
    The CSR-style encoding — one concatenated ``data`` array plus an
    ``offsets`` boundary array — turns the whole list into exactly two
    pack entries regardless of part count.

    Args:
        parts: 1-D arrays of any (possibly zero) lengths.
        prefix: Key prefix; emits ``{prefix}/data`` and ``{prefix}/offsets``.
        dtype: Dtype the concatenated data is stored as.

    Returns:
        ``{f"{prefix}/data": ..., f"{prefix}/offsets": ...}`` suitable for
        :meth:`SharedArrayPack.pack`.
    """
    lengths = np.array([int(p.shape[0]) for p in parts], dtype=np.int64)
    offsets = np.concatenate(([0], np.cumsum(lengths)))
    if parts:
        data = np.concatenate(
            [np.asarray(p, dtype=dtype) for p in parts]
        ) if offsets[-1] else np.empty(0, dtype=dtype)
    else:
        data = np.empty(0, dtype=dtype)
    return {f"{prefix}/data": data, f"{prefix}/offsets": offsets}


def ragged_from_arrays(
    arrays: dict[str, np.ndarray], prefix: str
) -> list[np.ndarray]:
    """Rebuild the ragged list as zero-copy slices of the packed data."""
    data = arrays[f"{prefix}/data"]
    offsets = arrays[f"{prefix}/offsets"]
    return [
        data[int(offsets[i]):int(offsets[i + 1])]
        for i in range(offsets.shape[0] - 1)
    ]


# ------------------------------------------------------------ environments


def environments_to_arrays(
    environments: list[EnvironmentData], prefix: str
) -> tuple[dict[str, np.ndarray], dict]:
    """Flatten environments into (arrays, meta) for :meth:`pack`.

    CSR feature matrices contribute their ``data``/``indices``/``indptr``
    arrays; dense ones a single ``x`` array.  ``meta[prefix]`` records,
    per environment, its name plus whatever is needed to reassemble.
    """
    arrays: dict[str, np.ndarray] = {}
    described = []
    for i, env in enumerate(environments):
        base = f"{prefix}/{i}"
        if sparse.issparse(env.features):
            csr = env.features.tocsr()
            arrays[f"{base}/data"] = csr.data
            arrays[f"{base}/indices"] = csr.indices
            arrays[f"{base}/indptr"] = csr.indptr
            described.append(
                {"name": env.name, "sparse": True,
                 "shape": tuple(int(s) for s in csr.shape)}
            )
        else:
            arrays[f"{base}/x"] = np.asarray(env.features)
            described.append({"name": env.name, "sparse": False})
        arrays[f"{base}/labels"] = env.labels
    return arrays, {prefix: described}


def pack_train_test(
    train_environments: list[EnvironmentData],
    test_environments: list[EnvironmentData],
) -> SharedArrayPack:
    """One owning pack holding both environment lists, under the
    ``"train"``/``"test"`` prefixes ``init_experiment_worker`` expects.

    The experiment fan-out and the tuning scheduler both ship the same
    shape of payload — fit on one list, evaluate on the other — so the
    pack layout lives here rather than being rebuilt inline per caller.
    The caller owns disposal (``pack.dispose()`` once workers are done).
    """
    arrays, meta = environments_to_arrays(train_environments, "train")
    test_arrays, test_meta = environments_to_arrays(test_environments, "test")
    arrays.update(test_arrays)
    meta.update(test_meta)
    return SharedArrayPack.pack(arrays, meta)


def environments_from_arrays(
    arrays: dict[str, np.ndarray], meta: dict, prefix: str
) -> list[EnvironmentData]:
    """Reassemble environments from attached views (zero-copy)."""
    environments = []
    for i, desc in enumerate(meta[prefix]):
        base = f"{prefix}/{i}"
        if desc["sparse"]:
            features = sparse.csr_matrix(
                (arrays[f"{base}/data"], arrays[f"{base}/indices"],
                 arrays[f"{base}/indptr"]),
                shape=tuple(desc["shape"]), copy=False,
            )
        else:
            features = arrays[f"{base}/x"]
        environments.append(
            EnvironmentData(desc["name"], features,
                            arrays[f"{base}/labels"])
        )
    return environments
