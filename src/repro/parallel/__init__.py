"""Process-pool execution with zero-copy shared-memory data handoff.

Public surface:

* :class:`~repro.parallel.engine.ParallelEngine` — ordered, exception-
  surfacing ``map`` over worker processes (inline at ``n_jobs=1``).
* :func:`~repro.parallel.engine.spawn_task_seeds` — per-task RNG streams
  via ``np.random.SeedSequence.spawn``.
* :class:`~repro.parallel.shared.SharedArrayPack` — one shared-memory
  block carrying numpy/CSR data to workers without per-task pickling.

:mod:`repro.parallel.worker` (the experiment worker entry points) is
imported on demand by the experiment runner, not re-exported here — it
pulls in the training stack, which this package must not depend on.
"""

from repro.parallel.engine import (
    ParallelEngine,
    WorkerTaskError,
    default_start_method,
    spawn_task_seeds,
)
from repro.parallel.shared import (
    ArrayEntry,
    PackSpec,
    SharedArrayPack,
    environments_from_arrays,
    environments_to_arrays,
    ragged_from_arrays,
    ragged_to_arrays,
)

__all__ = [
    "ParallelEngine",
    "WorkerTaskError",
    "default_start_method",
    "spawn_task_seeds",
    "ArrayEntry",
    "PackSpec",
    "SharedArrayPack",
    "environments_from_arrays",
    "environments_to_arrays",
    "ragged_from_arrays",
    "ragged_to_arrays",
]
