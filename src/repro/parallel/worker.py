"""Worker-side entry points of the experiment trainer×seed fan-out.

The pool initializer attaches the parent's shared-memory pack once per
worker process and rebuilds the encoded train/test environments as
zero-copy views; after that, each :class:`FitTask` travelling down the
task pipe is a few hundred bytes (a trainer spec, a seed, a flag).

Everything here is module-level and picklable by construction, so the
same code runs under ``fork`` and ``spawn`` start methods — and inline
in the parent when ``n_jobs=1``, where :func:`init_experiment_worker`
simply populates the module state of the calling process.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping

from repro.data.dataset import EnvironmentData
from repro.metrics.fairness import FairnessReport
from repro.obs.tracer import Tracer
from repro.parallel.shared import (
    PackSpec,
    SharedArrayPack,
    environments_from_arrays,
)
from repro.train.registry import TrainerSpec

__all__ = [
    "FitTask",
    "FitOutcome",
    "TrialTask",
    "TrialOutcome",
    "EncodeTask",
    "EncodeOutcome",
    "init_experiment_worker",
    "run_fit_task",
    "run_trial_task",
    "run_encode_task",
]

#: Per-process state: the attached pack plus rebuilt environments.
_STATE: dict = {}

#: Environment-list prefixes an initializer pack may carry.  ``"raw"``
#: ships un-encoded per-province environments for joint searches, where
#: the extractor runs against raw features instead of a pre-encoded
#: design matrix.
_KNOWN_PREFIXES = ("train", "test", "raw")


def init_experiment_worker(spec: PackSpec) -> None:
    """Attach the shared pack and rebuild its environment lists.

    Runs once per worker process (or once inline for ``n_jobs=1``).  The
    pack object is kept in module state so the mapping stays alive for
    the lifetime of the worker; environments are zero-copy views into it.

    The pack may carry any subset of the known prefixes: the experiment
    and head-only tuning fan-outs ship ``"train"``/``"test"`` encoded
    environments, joint searches ship ``"raw"`` per-province
    environments (the extractor half runs worker-side or in dedicated
    encode tasks).
    """
    pack = SharedArrayPack.attach(spec)
    arrays = pack.arrays()
    meta = spec.metadata()
    _STATE.clear()
    _STATE["pack"] = pack
    for prefix in _KNOWN_PREFIXES:
        if prefix in meta:
            _STATE[prefix] = environments_from_arrays(arrays, meta, prefix)


def _attached_environments(spec: PackSpec) -> tuple[list, list]:
    """Per-process memoized attach of an encoded train/test pack.

    Cached-path trials of one rung share their extractor's pack; the
    first trial of each distinct pack attaches and rebuilds the views,
    the rest reuse them.  The memo lives for the worker's lifetime —
    bounded, because the engine builds a fresh pool per ``map`` call.
    """
    memo = _STATE.setdefault("attached", {})
    if spec.shm_name not in memo:
        pack = SharedArrayPack.attach(spec)
        arrays = pack.arrays()
        meta = spec.metadata()
        memo[spec.shm_name] = (
            pack,
            environments_from_arrays(arrays, meta, "train"),
            environments_from_arrays(arrays, meta, "test"),
        )
    _, train, test = memo[spec.shm_name]
    return train, test


def worker_environments(which: str) -> list[EnvironmentData]:
    """The rebuilt ``"train"``/``"test"`` environments of this process.

    Raises:
        RuntimeError: If :func:`init_experiment_worker` has not run here.
    """
    if which not in _STATE:
        raise RuntimeError(
            "worker not initialized — init_experiment_worker must run "
            "(as the pool initializer) before tasks execute"
        )
    return _STATE[which]


@dataclass(frozen=True)
class FitTask:
    """One (method, seed) unit of the experiment fan-out.

    Attributes:
        method: Display name the parent aggregates under.
        spec: Declarative trainer recipe (picklable, unlike a closure).
        seed: Training seed for this repeat, already derived by the
            parent via ``SeedSequence.spawn`` — workers never derive
            seeds themselves, so results cannot depend on scheduling.
        traced: When true, the fit runs under a buffering tracer whose
            records are shipped back for merging into the parent log.
    """

    method: str
    spec: TrainerSpec
    seed: int
    traced: bool = False


@dataclass(frozen=True)
class FitOutcome:
    """What a worker sends back: the evaluation plus optional trace.

    Attributes:
        report: Per-province fairness report on the test environments.
        records: The worker tracer's buffered records (``None`` when the
            task was untraced).
        start_unix: Wall-clock start of the worker tracer, letting the
            parent place merged spans on its own timeline.
    """

    report: FairnessReport
    records: list[dict] | None
    start_unix: float


def run_fit_task(task: FitTask) -> FitOutcome:
    """Train one seeded head on the shared environments and evaluate it."""
    from repro.experiments.runner import evaluate_result_on

    tracer = Tracer(enabled=task.traced)
    result = task.spec.build(task.seed).fit(
        worker_environments("train"), tracer=tracer
    )
    report = evaluate_result_on(result, worker_environments("test"))
    records = list(tracer.records) if task.traced else None
    return FitOutcome(report=report, records=records,
                      start_unix=tracer.start_unix)


@dataclass(frozen=True)
class TrialTask:
    """One (trial, rung) unit of a hyper-parameter search fan-out.

    Attributes:
        trial_id: Trial identity the parent aggregates under.
        rung: Rung index this evaluation runs at.
        budget: Epoch budget of the rung; already baked into ``spec`` as
            its ``n_epochs`` override (``None`` — the grid path — leaves
            the config's own epoch count in force).
        spec: Trainer recipe with the trial's sampled configuration
            (head half only for joint trials — the extractor half rides
            in ``extractor_params``/``pack``).
        seed: Per-trial training seed, derived in the parent from the
            trial's ``SeedSequence`` stream — same rule as
            :class:`FitTask`, so search results cannot depend on which
            worker runs which trial.
        pack: Cached joint path — spec of the immutable encoded
            train/test pack its extractor published; the head attaches
            read-only and never touches raw features.
        extractor_params: Uncached joint path — flat GBDT overrides the
            worker applies to the default extractor configuration before
            fitting + leaf-encoding the shared ``"raw"`` environments
            itself (the per-trial baseline the cache is measured
            against).
        validation_fraction: Fit/validation row split of the encoded
            environments (uncached joint path only — the cached path's
            pack is already split).
        split_seed: Entropy of that split and of the extractor's
            early-stopping holdout; parent-derived, scheduling-free.
    """

    trial_id: str
    rung: int
    budget: int | None
    spec: TrainerSpec
    seed: int
    pack: PackSpec | None = None
    extractor_params: Mapping[str, object] | None = None
    validation_fraction: float | None = None
    split_seed: int | None = None


@dataclass(frozen=True)
class TrialOutcome:
    """What a trial evaluation sends back to the scheduler.

    Attributes:
        trial_id: Echoed task identity.
        rung: Echoed rung index.
        report: Fairness report on the shared validation ("test")
            environments — the scheduler scores its objective off this.
        train_seconds: Wall-clock of the fit alone (non-deterministic;
            excluded from bit-identity comparisons downstream).
        encode_seconds: Wall-clock this trial spent fitting and
            leaf-encoding its extractor (0.0 on the cached and head-only
            paths — the cache reports amortised encode cost itself).
        encode_cached: ``True`` when the trial attached a cached
            encoding, ``False`` when it encoded inline, ``None`` for
            head-only trials with no extractor half.
    """

    trial_id: str
    rung: int
    report: FairnessReport
    train_seconds: float
    encode_seconds: float = 0.0
    encode_cached: bool | None = None


def _fit_and_score(task: TrialTask, fit_envs, valid_envs,
                   encode_seconds: float = 0.0,
                   encode_cached: bool | None = None) -> TrialOutcome:
    from repro.experiments.runner import evaluate_result_on

    started = time.perf_counter()
    result = task.spec.build(task.seed).fit(fit_envs)
    train_seconds = time.perf_counter() - started
    report = evaluate_result_on(result, valid_envs)
    return TrialOutcome(trial_id=task.trial_id, rung=task.rung,
                        report=report, train_seconds=train_seconds,
                        encode_seconds=encode_seconds,
                        encode_cached=encode_cached)


def run_trial_task(task: TrialTask) -> TrialOutcome:
    """Train one trial configuration at its rung budget and evaluate it.

    Fits on the shared ``"train"`` environments and scores on ``"test"``
    — for tuning, the parent packs the *validation* slice under the test
    prefix, keeping the true test set out of the selection loop.

    Three modes, by which extractor payload the task carries:

    * ``pack`` set — cached joint trial: attach the published encoded
      pack (memoized per worker) and fit the head on its views.
    * ``extractor_params`` set — uncached joint trial: fit + leaf-encode
      the extractor against the shared ``"raw"`` environments, split,
      then fit the head.  Bit-identical to the cached mode because both
      run the same :func:`~repro.gbdt.packing.fit_extractor_encode` /
      :func:`~repro.tune.search.split_environments` pipeline on the same
      inputs.
    * neither — head-only trial on the pre-encoded ``"train"``/``"test"``
      environments (the original tuning path).
    """
    if task.pack is not None:
        fit_envs, valid_envs = _attached_environments(task.pack)
        return _fit_and_score(task, fit_envs, valid_envs,
                              encode_cached=True)
    if task.extractor_params is not None:
        fit_envs, valid_envs, encode_seconds = _encode_for_task(
            dict(task.extractor_params),
            task.validation_fraction,
            task.split_seed,
        )
        return _fit_and_score(task, fit_envs, valid_envs,
                              encode_seconds=encode_seconds,
                              encode_cached=False)
    return _fit_and_score(task, worker_environments("train"),
                          worker_environments("test"))


def _encode_for_task(
    extractor_params: dict,
    validation_fraction: float | None,
    split_seed: int | None,
) -> tuple[list[EnvironmentData], list[EnvironmentData], float]:
    """Fit + leaf-encode the extractor on the shared raw environments.

    The single encode pipeline both joint modes share: flat overrides on
    the default GBDT configuration, pooled fit with a tagged
    early-stopping holdout, per-environment leaf encoding, then the
    standard fit/validation row split.  Everything is a pure function of
    its arguments plus the shared raw environments, which is what makes
    the cached and uncached paths bit-identical.
    """
    from repro.gbdt.packing import fit_extractor_encode
    from repro.pipeline.extractor import default_gbdt_params
    from repro.tune.search import split_environments

    params = default_gbdt_params().replace_flat(extractor_params)
    seed = 0 if split_seed is None else int(split_seed)
    _, encoded, encode_seconds = fit_extractor_encode(
        params, worker_environments("raw"), holdout_seed=seed
    )
    fraction = 0.25 if validation_fraction is None else validation_fraction
    fit_envs, valid_envs = split_environments(encoded, fraction, seed=seed)
    return fit_envs, valid_envs, encode_seconds


@dataclass(frozen=True)
class EncodeTask:
    """One distinct extractor configuration to fit + leaf-encode.

    The cached joint scheduler fans these over the engine — one per
    distinct extractor fingerprint, regardless of how many trials share
    it.

    Attributes:
        fingerprint: Content-address of the resulting encoding (see
            :mod:`repro.tune.extractor_cache`); echoed back so the
            parent can publish the pack under the right key.
        extractor_params: Flat GBDT overrides of this configuration.
        validation_fraction: Fit/validation split of the encoded rows.
        split_seed: Entropy of that split and the early-stopping holdout.
    """

    fingerprint: str
    extractor_params: Mapping[str, object]
    validation_fraction: float
    split_seed: int


@dataclass(frozen=True)
class EncodeOutcome:
    """A fitted extractor's encoded, split environments.

    CSR environments pickle back through the result pipe; the parent
    immediately republishes them as an immutable shared pack, so the
    copy happens once per distinct configuration rather than per trial.
    """

    fingerprint: str
    fit_environments: list[EnvironmentData]
    valid_environments: list[EnvironmentData]
    encode_seconds: float


def run_encode_task(task: EncodeTask) -> EncodeOutcome:
    """Fit + leaf-encode one extractor configuration on the raw pack."""
    fit_envs, valid_envs, encode_seconds = _encode_for_task(
        dict(task.extractor_params),
        task.validation_fraction,
        task.split_seed,
    )
    return EncodeOutcome(
        fingerprint=task.fingerprint,
        fit_environments=fit_envs,
        valid_environments=valid_envs,
        encode_seconds=encode_seconds,
    )
