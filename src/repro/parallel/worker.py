"""Worker-side entry points of the experiment trainer×seed fan-out.

The pool initializer attaches the parent's shared-memory pack once per
worker process and rebuilds the encoded train/test environments as
zero-copy views; after that, each :class:`FitTask` travelling down the
task pipe is a few hundred bytes (a trainer spec, a seed, a flag).

Everything here is module-level and picklable by construction, so the
same code runs under ``fork`` and ``spawn`` start methods — and inline
in the parent when ``n_jobs=1``, where :func:`init_experiment_worker`
simply populates the module state of the calling process.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.data.dataset import EnvironmentData
from repro.metrics.fairness import FairnessReport
from repro.obs.tracer import Tracer
from repro.parallel.shared import (
    PackSpec,
    SharedArrayPack,
    environments_from_arrays,
)
from repro.train.registry import TrainerSpec

__all__ = [
    "FitTask",
    "FitOutcome",
    "TrialTask",
    "TrialOutcome",
    "init_experiment_worker",
    "run_fit_task",
    "run_trial_task",
]

#: Per-process state: the attached pack plus rebuilt environments.
_STATE: dict = {}


def init_experiment_worker(spec: PackSpec) -> None:
    """Attach the shared pack and rebuild train/test environments.

    Runs once per worker process (or once inline for ``n_jobs=1``).  The
    pack object is kept in module state so the mapping stays alive for
    the lifetime of the worker; environments are zero-copy views into it.
    """
    pack = SharedArrayPack.attach(spec)
    arrays = pack.arrays()
    meta = spec.metadata()
    _STATE["pack"] = pack
    _STATE["train"] = environments_from_arrays(arrays, meta, "train")
    _STATE["test"] = environments_from_arrays(arrays, meta, "test")


def worker_environments(which: str) -> list[EnvironmentData]:
    """The rebuilt ``"train"``/``"test"`` environments of this process.

    Raises:
        RuntimeError: If :func:`init_experiment_worker` has not run here.
    """
    if which not in _STATE:
        raise RuntimeError(
            "worker not initialized — init_experiment_worker must run "
            "(as the pool initializer) before tasks execute"
        )
    return _STATE[which]


@dataclass(frozen=True)
class FitTask:
    """One (method, seed) unit of the experiment fan-out.

    Attributes:
        method: Display name the parent aggregates under.
        spec: Declarative trainer recipe (picklable, unlike a closure).
        seed: Training seed for this repeat, already derived by the
            parent via ``SeedSequence.spawn`` — workers never derive
            seeds themselves, so results cannot depend on scheduling.
        traced: When true, the fit runs under a buffering tracer whose
            records are shipped back for merging into the parent log.
    """

    method: str
    spec: TrainerSpec
    seed: int
    traced: bool = False


@dataclass(frozen=True)
class FitOutcome:
    """What a worker sends back: the evaluation plus optional trace.

    Attributes:
        report: Per-province fairness report on the test environments.
        records: The worker tracer's buffered records (``None`` when the
            task was untraced).
        start_unix: Wall-clock start of the worker tracer, letting the
            parent place merged spans on its own timeline.
    """

    report: FairnessReport
    records: list[dict] | None
    start_unix: float


def run_fit_task(task: FitTask) -> FitOutcome:
    """Train one seeded head on the shared environments and evaluate it."""
    from repro.experiments.runner import evaluate_result_on

    tracer = Tracer(enabled=task.traced)
    result = task.spec.build(task.seed).fit(
        worker_environments("train"), tracer=tracer
    )
    report = evaluate_result_on(result, worker_environments("test"))
    records = list(tracer.records) if task.traced else None
    return FitOutcome(report=report, records=records,
                      start_unix=tracer.start_unix)


@dataclass(frozen=True)
class TrialTask:
    """One (trial, rung) unit of a hyper-parameter search fan-out.

    Attributes:
        trial_id: Trial identity the parent aggregates under.
        rung: Rung index this evaluation runs at.
        budget: Epoch budget of the rung; already baked into ``spec`` as
            its ``n_epochs`` override (``None`` — the grid path — leaves
            the config's own epoch count in force).
        spec: Trainer recipe with the trial's sampled configuration.
        seed: Per-trial training seed, derived in the parent from the
            trial's ``SeedSequence`` stream — same rule as
            :class:`FitTask`, so search results cannot depend on which
            worker runs which trial.
    """

    trial_id: str
    rung: int
    budget: int | None
    spec: TrainerSpec
    seed: int


@dataclass(frozen=True)
class TrialOutcome:
    """What a trial evaluation sends back to the scheduler.

    Attributes:
        trial_id: Echoed task identity.
        rung: Echoed rung index.
        report: Fairness report on the shared validation ("test")
            environments — the scheduler scores its objective off this.
        train_seconds: Wall-clock of the fit alone (non-deterministic;
            excluded from bit-identity comparisons downstream).
    """

    trial_id: str
    rung: int
    report: FairnessReport
    train_seconds: float


def run_trial_task(task: TrialTask) -> TrialOutcome:
    """Train one trial configuration at its rung budget and evaluate it.

    Fits on the shared ``"train"`` environments and scores on ``"test"``
    — for tuning, the parent packs the *validation* slice under the test
    prefix, keeping the true test set out of the selection loop.
    """
    from repro.experiments.runner import evaluate_result_on

    started = time.perf_counter()
    result = task.spec.build(task.seed).fit(worker_environments("train"))
    train_seconds = time.perf_counter() - started
    report = evaluate_result_on(result, worker_environments("test"))
    return TrialOutcome(trial_id=task.trial_id, rung=task.rung,
                        report=report, train_seconds=train_seconds)
