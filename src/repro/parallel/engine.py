"""Process-pool execution engine with deterministic seeding and ordering.

:class:`ParallelEngine` is the one place the repo talks to
``multiprocessing``: experiment fan-outs, the parallel benchmark and any
future sharded workload all submit picklable payloads to a module-level
worker function and get results back **in submission order**, with child
exceptions re-raised in the parent carrying the full worker traceback.

Design rules the rest of the codebase relies on:

* ``n_jobs=1`` never touches a pool — tasks run inline in the calling
  process (same function, same payloads), so the serial path is trivially
  bit-identical and always available as a fallback.
* Determinism belongs to *tasks*, not workers: which process picks up
  which task is scheduling noise, so per-task RNG streams are derived up
  front via :func:`spawn_task_seeds` (``np.random.SeedSequence.spawn``)
  and shipped inside the payload.  No two tasks ever share correlated
  state, and the serial run sees the exact same seeds.
* Large inputs travel through :mod:`repro.parallel.shared` packs attached
  by the pool initializer, never through the task pipe.
"""

from __future__ import annotations

import multiprocessing
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = [
    "ParallelEngine",
    "WorkerTaskError",
    "default_start_method",
    "spawn_task_seeds",
]


def default_start_method() -> str:
    """``fork`` where the platform offers it (cheap, inherits imports),
    ``spawn`` otherwise.  Worker functions and payloads are required to
    be picklable module-level objects either way, so the two differ only
    in startup cost."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def spawn_task_seeds(entropy: int | Sequence[int], n_tasks: int) -> list[int]:
    """``n_tasks`` independent integer seeds via ``SeedSequence.spawn``.

    Each task gets its own spawned child stream, so seeds are pairwise
    uncorrelated no matter how tasks land on workers — and identical
    between serial and parallel execution, because derivation depends
    only on ``entropy`` and the task index.

    Args:
        entropy: Root entropy (an int or a sequence of ints).
        n_tasks: Number of independent streams to derive.

    Returns:
        One ``uint32``-ranged Python int per task.
    """
    root = np.random.SeedSequence(entropy)
    return [int(child.generate_state(1)[0]) for child in root.spawn(n_tasks)]


class WorkerTaskError(RuntimeError):
    """A task raised inside a worker process.

    Attributes:
        index: Submission-order index of the failing task.
        worker_traceback: Formatted traceback captured in the worker.
    """

    def __init__(self, index: int, message: str, worker_traceback: str):
        super().__init__(
            f"task {index} failed in worker: {message}\n"
            f"--- worker traceback ---\n{worker_traceback}"
        )
        self.index = index
        self.worker_traceback = worker_traceback


def _guarded_call(fn: Callable, payload) -> tuple[str, object]:
    """Run one task, catching everything so tracebacks survive pickling."""
    try:
        return ("ok", fn(payload))
    except BaseException as exc:  # noqa: BLE001 - surfaced to the parent
        return ("error", (repr(exc), traceback.format_exc()))


def _pool_task(args: tuple) -> tuple[str, object]:
    fn, payload = args
    return _guarded_call(fn, payload)


@dataclass(frozen=True)
class ParallelEngine:
    """Maps a worker function over payloads, serially or via a pool.

    Attributes:
        n_jobs: Worker process count; ``1`` (default) runs inline.
        start_method: Pool start method; defaults to
            :func:`default_start_method`.  ``fork`` and ``spawn`` are
            both supported because nothing relies on inherited state —
            workers receive everything via initializer args and payloads.
    """

    n_jobs: int = 1
    start_method: str | None = None

    def __post_init__(self) -> None:
        if self.n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")

    def map(
        self,
        fn: Callable,
        payloads: Iterable,
        initializer: Callable | None = None,
        initargs: tuple = (),
    ) -> list:
        """Run ``fn(payload)`` for every payload; results in input order.

        Args:
            fn: Module-level (picklable) worker function of one argument.
            payloads: Picklable task payloads.
            initializer: Optional per-worker setup (e.g. attaching a
                :class:`~repro.parallel.shared.SharedArrayPack`); with
                ``n_jobs=1`` it runs once, inline, before the tasks.
            initargs: Arguments for ``initializer``.

        Returns:
            ``[fn(p) for p in payloads]`` — exactly that list, whatever
            the execution mode.

        Raises:
            WorkerTaskError: If any task raised; the earliest failing
                task (in submission order) wins, with its worker
                traceback attached.
        """
        payloads = list(payloads)
        if self.n_jobs == 1:
            if initializer is not None:
                initializer(*initargs)
            return [fn(payload) for payload in payloads]

        context = multiprocessing.get_context(
            self.start_method or default_start_method()
        )
        outcomes: list[tuple[str, object]] = []
        with ProcessPoolExecutor(
            max_workers=min(self.n_jobs, max(len(payloads), 1)),
            mp_context=context,
            initializer=initializer,
            initargs=initargs,
        ) as pool:
            futures = [
                pool.submit(_pool_task, (fn, payload)) for payload in payloads
            ]
            outcomes = [future.result() for future in futures]
        results = []
        for index, (status, value) in enumerate(outcomes):
            if status == "error":
                message, worker_tb = value
                raise WorkerTaskError(index, message, worker_tb)
            results.append(value)
        return results
