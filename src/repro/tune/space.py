"""Typed, declarative hyper-parameter search spaces.

An :class:`HPSpace` names a trainer and maps config fields to *parameter
descriptors* — :class:`Uniform`, :class:`LogUniform`, :class:`Choice` and
:class:`IntRange`.  Construction validates every descriptor against the
trainer's config dataclass (unknown fields fail with the list of valid
ones, reserved fields fail outright), so a typo'd space dies before any
trial is spent on it — the same fail-fast contract the trainer registry
gives `make_trainer`.

Two consumption modes:

* ``space.sample(rng)`` — one configuration drawn from the descriptors'
  distributions; this is what the ASHA scheduler feeds per-trial
  ``SeedSequence`` streams into.
* ``space.grid_points()`` — the Cartesian product of enumerable
  descriptors (``Choice``/``IntRange``); this is how the legacy
  ``grid_search`` surface degenerates into the same machinery.

Default spaces for all 8 registered trainers live here too, registered
alongside the trainer registry's canonical names — ``default_space`` is
how ``repro tune`` knows what to search without any user configuration.
"""

from __future__ import annotations

import difflib
import itertools
from dataclasses import dataclass, fields as dataclass_fields
from typing import Mapping, Sequence

import numpy as np

__all__ = [
    "SpaceError",
    "ParamSpec",
    "Uniform",
    "LogUniform",
    "Choice",
    "IntRange",
    "HPSpace",
    "JointHPSpace",
    "EXTRACTOR_COMPONENT",
    "default_space",
    "default_extractor_space",
    "register_space",
    "config_class_for",
    "component_fields",
]

#: Fields a space may never search: ``seed`` belongs to the per-trial
#: SeedSequence stream, ``n_epochs`` is the ASHA budget axis.
RESERVED_FIELDS = ("seed", "n_epochs")

#: The component name binding a space to the GBDT feature extractor
#: instead of a registered head trainer.  Joint searches pair one such
#: space with a trainer-bound head space (:meth:`HPSpace.joint`).
EXTRACTOR_COMPONENT = "gbdt"


class SpaceError(ValueError):
    """An HPSpace or parameter descriptor is ill-formed."""


@dataclass(frozen=True)
class ParamSpec:
    """Base descriptor: one searchable hyper-parameter's domain."""

    def sample(self, rng: np.random.Generator):
        """Draw one value from the descriptor's distribution."""
        raise NotImplementedError

    def contains(self, value) -> bool:
        """Whether a value lies in the descriptor's domain."""
        raise NotImplementedError

    def grid_values(self) -> tuple:
        """Enumerable candidate values, for grid-style consumption.

        Raises:
            SpaceError: For continuous descriptors, which cannot be
                enumerated — sample them or supply a ``Choice`` instead.
        """
        raise SpaceError(
            f"{type(self).__name__} is continuous and has no grid values; "
            "use Choice/IntRange for grid-style searches"
        )

    def to_json(self) -> dict:
        """JSON-compatible description (leaderboard provenance)."""
        raise NotImplementedError


@dataclass(frozen=True)
class Uniform(ParamSpec):
    """Float drawn uniformly from ``[low, high)``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not self.low < self.high:
            raise SpaceError(
                f"Uniform requires low < high, got [{self.low}, {self.high})"
            )

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def contains(self, value) -> bool:
        return isinstance(value, (int, float)) \
            and self.low <= float(value) <= self.high

    def to_json(self) -> dict:
        return {"kind": "uniform", "low": self.low, "high": self.high}


@dataclass(frozen=True)
class LogUniform(ParamSpec):
    """Float whose *logarithm* is uniform on ``[log low, log high)``.

    The right shape for scale parameters (learning rates, penalty
    weights, l2) where "3 vs 10" matters as much as "0.003 vs 0.01".
    """

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low <= 0:
            raise SpaceError(f"LogUniform requires low > 0, got {self.low}")
        if not self.low < self.high:
            raise SpaceError(
                f"LogUniform requires low < high, got [{self.low}, {self.high})"
            )

    def sample(self, rng: np.random.Generator) -> float:
        return float(np.exp(rng.uniform(np.log(self.low),
                                        np.log(self.high))))

    def contains(self, value) -> bool:
        return isinstance(value, (int, float)) \
            and self.low <= float(value) <= self.high

    def to_json(self) -> dict:
        return {"kind": "loguniform", "low": self.low, "high": self.high}


@dataclass(frozen=True)
class Choice(ParamSpec):
    """One of an explicit tuple of candidate values."""

    values: tuple

    def __post_init__(self) -> None:
        if not isinstance(self.values, tuple):
            object.__setattr__(self, "values", tuple(self.values))
        if not self.values:
            raise SpaceError("Choice requires at least one value")

    def sample(self, rng: np.random.Generator):
        value = self.values[int(rng.integers(len(self.values)))]
        return value.item() if isinstance(value, np.generic) else value

    def contains(self, value) -> bool:
        return value in self.values

    def grid_values(self) -> tuple:
        return self.values

    def to_json(self) -> dict:
        return {"kind": "choice", "values": list(self.values)}


@dataclass(frozen=True)
class IntRange(ParamSpec):
    """Integer drawn uniformly from the inclusive range ``[low, high]``."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if not self.low <= self.high:
            raise SpaceError(
                f"IntRange requires low <= high, got [{self.low}, {self.high}]"
            )

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.low, self.high + 1))

    def contains(self, value) -> bool:
        return isinstance(value, (int, np.integer)) \
            and not isinstance(value, bool) \
            and self.low <= int(value) <= self.high

    def grid_values(self) -> tuple:
        return tuple(range(self.low, self.high + 1))

    def to_json(self) -> dict:
        return {"kind": "intrange", "low": self.low, "high": self.high}


def config_class_for(trainer: str) -> type:
    """The config dataclass of a registered trainer, by any accepted name.

    Imports happen lazily for the same reason they do in
    :func:`~repro.train.registry.make_trainer` — the trainers import the
    training base module, so module-scope imports would be circular.

    Raises:
        KeyError: For unknown trainer names (same error surface as the
            registry).
    """
    from repro.baselines.finetune import FineTuneConfig
    from repro.baselines.group_dro import GroupDROConfig
    from repro.baselines.irmv1 import IRMv1Config
    from repro.baselines.upsampling import UpSamplingConfig
    from repro.baselines.vrex import VRExConfig
    from repro.core.config import LightMIRMConfig, MetaIRMConfig
    from repro.train.base import BaseTrainConfig
    from repro.train.registry import resolve_trainer_name

    canonical = resolve_trainer_name(trainer)
    if canonical.startswith("meta-IRM("):
        canonical = "meta-IRM"
    return {
        "ERM": BaseTrainConfig,
        "ERM + fine-tuning": FineTuneConfig,
        "Up Sampling": UpSamplingConfig,
        "Group DRO": GroupDROConfig,
        "V-REx": VRExConfig,
        "IRMv1": IRMv1Config,
        "meta-IRM": MetaIRMConfig,
        "LightMIRM": LightMIRMConfig,
    }[canonical]


def component_fields(component: str) -> tuple[str, list[str]]:
    """Searchable fields of the component that *owns* a space's params.

    Validation is routed through the owning component rather than assuming
    every space targets an LR-head trainer: ``EXTRACTOR_COMPONENT``
    resolves to the flattened GBDT surface
    (:meth:`~repro.gbdt.boosting.GBDTParams.flat_fields` — booster plus
    tree-growth knobs), anything else through the trainer registry to the
    head's config dataclass.

    Returns:
        ``(owner description, sorted valid field names)`` with reserved
        fields already removed.
    """
    if component == EXTRACTOR_COMPONENT:
        from repro.gbdt.boosting import GBDTParams

        valid = [f for f in GBDTParams.flat_fields()
                 if f not in RESERVED_FIELDS]
        return "GBDTParams (extractor)", sorted(valid)
    config_cls = config_class_for(component)
    valid = [f.name for f in dataclass_fields(config_cls)
             if f.name not in RESERVED_FIELDS]
    return config_cls.__name__, sorted(valid)


def _unknown_field_error(unknown: Sequence[str], owner: str,
                         component: str, valid: Sequence[str]) -> SpaceError:
    """Unknown-field failure with did-you-mean suggestions per field."""
    suggestions = []
    for name in unknown:
        close = difflib.get_close_matches(name, valid, n=1)
        if close:
            suggestions.append(f"{name!r} (did you mean {close[0]!r}?)")
        else:
            suggestions.append(repr(name))
    return SpaceError(
        f"unknown parameter(s) [{', '.join(suggestions)}] for component "
        f"{component!r} ({owner}); valid fields: {list(valid)}"
    )


@dataclass(frozen=True)
class HPSpace:
    """A trainer name plus its searchable parameter descriptors.

    Attributes:
        trainer: Any spelling the trainer registry accepts, or ``None``
            for an *unbound* space (no config-dataclass validation — the
            escape hatch the legacy builder-based ``grid_search`` shim
            uses, since a closure has no registry name to validate
            against).
        params: Config field name -> :class:`ParamSpec`.

    Raises:
        SpaceError: On an empty space, a reserved or unknown field, or a
            value that is not a :class:`ParamSpec`.
    """

    trainer: str | None
    params: Mapping[str, ParamSpec]

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", dict(self.params))
        if not self.params:
            raise SpaceError("HPSpace requires at least one parameter")
        for name, spec in self.params.items():
            if not isinstance(spec, ParamSpec):
                raise SpaceError(
                    f"parameter {name!r} must be a ParamSpec "
                    f"(Uniform/LogUniform/Choice/IntRange), "
                    f"got {type(spec).__name__}"
                )
            if name in RESERVED_FIELDS:
                raise SpaceError(
                    f"parameter {name!r} is reserved: seeds come from the "
                    "per-trial SeedSequence stream and n_epochs is the "
                    "scheduler's budget axis"
                )
        if self.trainer is not None:
            owner, valid = component_fields(self.trainer)
            unknown = sorted(set(self.params) - set(valid))
            if unknown:
                raise _unknown_field_error(
                    unknown, owner, self.trainer, valid
                )

    @classmethod
    def grid(cls, trainer: str | None,
             axes: Mapping[str, Sequence]) -> "HPSpace":
        """Degenerate grid space: every axis becomes a :class:`Choice`."""
        return cls(
            trainer=trainer,
            params={name: Choice(tuple(values))
                    for name, values in axes.items()},
        )

    @classmethod
    def joint(cls, gbdt_space: "HPSpace",
              head_space: "HPSpace") -> "JointHPSpace":
        """Pair an extractor space with a head space for a joint search.

        Args:
            gbdt_space: A space bound to :data:`EXTRACTOR_COMPONENT`
                (validated against the flattened GBDT parameter surface).
            head_space: A space bound to a registered head trainer.

        Returns:
            A :class:`JointHPSpace` driving
            :func:`~repro.tune.asha.run_joint_asha`.
        """
        return JointHPSpace(extractor=gbdt_space, head=head_space)

    @property
    def is_extractor(self) -> bool:
        """Whether this space searches the GBDT extractor's knobs."""
        return self.trainer == EXTRACTOR_COMPONENT

    def names(self) -> list[str]:
        """Parameter names in the canonical (sorted) sampling order."""
        return sorted(self.params)

    def sample(self, rng: np.random.Generator) -> dict[str, object]:
        """One configuration; fields are drawn in sorted-name order so a
        given RNG stream always yields the same configuration."""
        return {name: self.params[name].sample(rng) for name in self.names()}

    def contains(self, params: Mapping[str, object]) -> bool:
        """Whether a configuration lies inside the space."""
        return set(params) == set(self.params) and all(
            self.params[name].contains(value)
            for name, value in params.items()
        )

    def grid_points(self) -> list[dict[str, object]]:
        """Cartesian product of enumerable descriptors, in sorted-name
        lexicographic order.

        Raises:
            SpaceError: If any descriptor is continuous.
        """
        names = self.names()
        values = [self.params[name].grid_values() for name in names]
        return [dict(zip(names, combo))
                for combo in itertools.product(*values)]

    def to_json(self) -> dict:
        """JSON-compatible description (leaderboard provenance)."""
        return {
            "trainer": self.trainer,
            "params": {name: self.params[name].to_json()
                       for name in self.names()},
        }


@dataclass(frozen=True)
class JointHPSpace:
    """A GBDT extractor space paired with an LR-head trainer space.

    The two halves are validated by their owning components (see
    :func:`component_fields`): the ``extractor`` half against the
    flattened GBDT parameter surface, the ``head`` half against the
    trainer's config dataclass.  A joint trial's configuration is the
    head half's fields plus one ``"extractor"`` sub-dict — the scheduler
    groups trials sharing an extractor configuration so the expensive
    fit + leaf-encode runs once per distinct configuration
    (:mod:`repro.tune.extractor_cache`).
    """

    extractor: HPSpace
    head: HPSpace

    def __post_init__(self) -> None:
        if not isinstance(self.extractor, HPSpace) \
                or not self.extractor.is_extractor:
            raise SpaceError(
                "JointHPSpace.extractor must be an HPSpace bound to "
                f"{EXTRACTOR_COMPONENT!r} "
                f"(e.g. HPSpace('gbdt', {{'n_trees': IntRange(20, 60)}}))"
            )
        if not isinstance(self.head, HPSpace) or self.head.trainer is None \
                or self.head.is_extractor:
            raise SpaceError(
                "JointHPSpace.head must be an HPSpace bound to a "
                "registered head trainer"
            )

    @property
    def trainer(self) -> str:
        """The head trainer the joint search selects for."""
        return self.head.trainer

    def sample(self, rng: np.random.Generator) -> dict[str, object]:
        """One joint configuration: head fields + ``"extractor"`` sub-dict.

        The scheduler samples the halves from *separate* per-trial
        streams (so extractor sharing is independent of head sampling);
        this single-stream variant exists for the grid/shim surfaces.
        """
        params = self.head.sample(rng)
        params["extractor"] = self.extractor.sample(rng)
        return params

    def grid_points(self) -> list[dict[str, object]]:
        """Cartesian product of both halves; extractor-major order so
        grid-style consumers can encode once per extractor point."""
        return [
            {**head_point, "extractor": dict(extractor_point)}
            for extractor_point in self.extractor.grid_points()
            for head_point in self.head.grid_points()
        ]

    def to_json(self) -> dict:
        """JSON-compatible description (leaderboard provenance)."""
        return {
            "trainer": self.head.trainer,
            "head": self.head.to_json(),
            "extractor": self.extractor.to_json(),
        }


# ------------------------------------------------------- default spaces
#
# One space per registered trainer, keyed by canonical Table I name.
# Every space covers the shared optimisation knobs; IRM-family spaces add
# the paper's penalty settings (λ, α) and LightMIRM the MRQ axes (L, γ).
# Bounds bracket the tuned repo defaults by roughly an order of magnitude
# — wide enough for the search to matter, narrow enough that smoke-sized
# budgets stay numerically stable.

_DEFAULT_SPACES: dict[str, HPSpace] = {}


def register_space(trainer: str, space: HPSpace) -> None:
    """Register (or replace) the default space of a trainer."""
    from repro.train.registry import resolve_trainer_name

    _DEFAULT_SPACES[resolve_trainer_name(trainer)] = space


def default_space(trainer: str) -> HPSpace:
    """The registered default space of a trainer, by any accepted name.

    Raises:
        KeyError: For unknown trainer names.
    """
    from repro.train.registry import resolve_trainer_name

    canonical = resolve_trainer_name(trainer)
    if canonical.startswith("meta-IRM("):
        canonical = "meta-IRM"
    return _DEFAULT_SPACES[canonical]


def default_extractor_space() -> HPSpace:
    """The default GBDT extractor space of ``repro tune --joint``.

    Brackets :func:`~repro.pipeline.extractor.default_gbdt_params` on the
    axes that dominate Table-III quality and wall-clock: ensemble size,
    shrinkage, histogram resolution and the per-tree leaf budget.
    """
    return HPSpace(EXTRACTOR_COMPONENT, {
        "n_trees": IntRange(20, 60),
        "learning_rate": LogUniform(0.05, 0.3),
        "max_bins": Choice((32, 64, 128)),
        "max_leaves": IntRange(15, 63),
    })


def _register_defaults() -> None:
    common = {
        "learning_rate": LogUniform(0.5, 4.0),
        "l2": LogUniform(1e-5, 1e-1),
    }
    meta_common = {
        # The meta-learners use far smaller outer steps than plain GD.
        "l2": LogUniform(1e-5, 1e-1),
        "inner_lr": LogUniform(0.02, 0.5),
        "lambda_penalty": LogUniform(0.3, 10.0),
    }
    for name, space in {
        "ERM": HPSpace("ERM", dict(common)),
        "ERM + fine-tuning": HPSpace("ERM + fine-tuning", {
            **common,
            "finetune_epochs": IntRange(5, 30),
            "finetune_lr": LogUniform(0.05, 1.0),
        }),
        "Up Sampling": HPSpace("Up Sampling", {
            **common,
            "power": Uniform(0.0, 1.0),
            "positive_weight": LogUniform(0.5, 4.0),
        }),
        "Group DRO": HPSpace("Group DRO", {
            **common,
            "group_lr": LogUniform(0.1, 4.0),
        }),
        "V-REx": HPSpace("V-REx", {
            **common,
            "variance_weight": LogUniform(0.1, 10.0),
        }),
        "IRMv1": HPSpace("IRMv1", {
            "learning_rate": LogUniform(0.1, 1.0),
            "l2": LogUniform(1e-5, 1e-1),
            "penalty_weight": LogUniform(1.0, 50.0),
        }),
        "meta-IRM": HPSpace("meta-IRM", {
            "learning_rate": LogUniform(0.005, 0.1),
            **meta_common,
        }),
        "LightMIRM": HPSpace("LightMIRM", {
            "learning_rate": LogUniform(0.05, 1.0),
            **meta_common,
            "queue_length": IntRange(1, 9),
            "gamma": Uniform(0.5, 1.0),
        }),
    }.items():
        _DEFAULT_SPACES[name] = space


_register_defaults()
