"""Content-addressed shared-memory cache of fitted-GBDT leaf encodings.

A joint GBDT×head search evaluates many (extractor, head) pairs, but the
expensive half — fitting the GBDT and leaf-encoding every environment —
depends only on the extractor configuration, the data and the split
seed.  This module turns that observation into the search's core
optimisation: encodings are *content-addressed* by
:func:`extractor_fingerprint` (a sha256 over the canonical full GBDT
configuration, the raw-environment fingerprint, the split seed and the
validation fraction), fitted **exactly once per distinct fingerprint**
(the encode batch itself fans over the
:class:`~repro.parallel.engine.ParallelEngine`), and published as
immutable :class:`~repro.parallel.shared.SharedArrayPack` blocks that
head trials attach read-only.

Cost accounting is part of the contract: every per-trial lookup emits a
``tune_cache`` run-log event (hit or miss), every publish/evict its own
event, and :class:`CacheStats` aggregates hit-rate, resident bytes,
encode seconds spent and encode seconds *saved* — the numbers
``BENCH_tune.json`` and the observability report surface.

Correctness is anchored on purity, not on the cache: the encode path is
:func:`~repro.gbdt.packing.fit_extractor_encode` followed by
:func:`~repro.tune.search.split_environments`, the same pipeline an
uncached trial runs inline — so a cached attach, a fresh encode and a
post-eviction re-encode are all bit-identical.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np
from scipy import sparse

from repro.data.dataset import EnvironmentData
from repro.obs.runlog import TUNE_CACHE_EVENT, TUNE_ENCODE_SPAN
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.parallel.engine import ParallelEngine
from repro.parallel.shared import PackCache, PackSpec, pack_train_test
from repro.parallel.worker import (
    EncodeOutcome,
    EncodeTask,
    init_experiment_worker,
    run_encode_task,
)

__all__ = [
    "CacheStats",
    "ExtractorEncodingCache",
    "environments_fingerprint",
    "extractor_fingerprint",
]


def _hash_array(digest, array: np.ndarray) -> None:
    array = np.ascontiguousarray(array)
    digest.update(str(array.shape).encode())
    digest.update(str(array.dtype).encode())
    digest.update(array.tobytes())


def environments_fingerprint(
    environments: Sequence[EnvironmentData],
) -> str:
    """Stable content fingerprint of an environment list.

    Hashes names, shapes and raw bytes (CSR matrices through their three
    backing arrays), so byte-identical data shares a fingerprint across
    runs regardless of how it was loaded.  Truncated to 16 hex chars —
    change detection, not collision resistance.
    """
    digest = hashlib.sha256()
    for env in environments:
        digest.update(env.name.encode("utf-8"))
        if sparse.issparse(env.features):
            csr = env.features.tocsr()
            digest.update(str(tuple(csr.shape)).encode())
            for part in (csr.data, csr.indices, csr.indptr):
                _hash_array(digest, part)
        else:
            _hash_array(digest, np.asarray(env.features))
        _hash_array(digest, np.asarray(env.labels))
    return digest.hexdigest()[:16]


def extractor_fingerprint(
    extractor_params: Mapping[str, object],
    data_fingerprint: str,
    split_seed: int,
    validation_fraction: float,
) -> str:
    """Content address of one extractor encoding.

    The flat overrides are first resolved onto the *full* default GBDT
    configuration (:meth:`~repro.gbdt.boosting.GBDTParams.canonical`), so
    two spellings of the same effective configuration — e.g. an explicit
    default vs an omitted field — share an address, and any future
    default change automatically invalidates old addresses.
    """
    from repro.pipeline.extractor import default_gbdt_params

    params = default_gbdt_params().replace_flat(extractor_params)
    payload = {
        "extractor": params.canonical(),
        "data": data_fingerprint,
        "split_seed": int(split_seed),
        "validation_fraction": float(validation_fraction),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


@dataclass
class CacheStats:
    """Aggregated cost accounting of one search's encoding cache.

    Attributes:
        hits: Trial evaluations that attached an already-scheduled
            encoding (including siblings of the trial that triggered it
            within the same rung — each such trial skipped one encode).
        misses: Trial evaluations whose fingerprint had to be encoded.
        evictions: Packs disposed under the byte budget.
        encode_seconds: Wall-clock spent fitting + leaf-encoding across
            all distinct configurations (sum over workers).
        encode_seconds_saved: Wall-clock the hits would have spent
            re-encoding — each hit saves one encode of its fingerprint's
            measured cost.
        published_bytes: Total bytes of every pack ever published
            (cumulative; resident bytes are the pack store's concern).
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    encode_seconds: float = 0.0
    encode_seconds_saved: float = 0.0
    published_bytes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_json(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            "encode_seconds": self.encode_seconds,
            "encode_seconds_saved": self.encode_seconds_saved,
            "published_bytes": self.published_bytes,
        }


class ExtractorEncodingCache:
    """Encode-once / attach-many store of extractor leaf encodings.

    Owned by the joint scheduler, one instance per search.  Per rung the
    scheduler calls :meth:`prepare` with every pending trial's extractor
    configuration: distinct missing fingerprints are fitted + encoded as
    one engine batch, published as immutable packs and pinned; the
    returned spec table lets each trial attach read-only.  After the
    rung, :meth:`release` drops the pins and enforces the byte budget
    (LRU, pinned entries exempt).  An evicted fingerprint that a later
    rung still needs is simply re-encoded — same pure pipeline, same
    bytes.

    Args:
        raw_environments: The raw per-province environments every
            encoding derives from (fingerprinted once at construction).
        validation_fraction: Fit/validation row split of encoded rows.
        split_seed: Entropy of that split and each extractor's
            early-stopping holdout.
        max_bytes: Optional resident-byte budget of the pack store.
        tracer: Run tracer for ``tune_cache`` events and encode spans.
    """

    def __init__(
        self,
        raw_environments: Sequence[EnvironmentData],
        *,
        validation_fraction: float,
        split_seed: int,
        max_bytes: int | None = None,
        tracer: Tracer = NULL_TRACER,
    ):
        self.validation_fraction = float(validation_fraction)
        self.split_seed = int(split_seed)
        self.data_fingerprint = environments_fingerprint(raw_environments)
        self.stats = CacheStats()
        self._packs = PackCache(max_bytes=max_bytes)
        self._encode_seconds: dict[str, float] = {}
        self._tracer = tracer

    def fingerprint(self, extractor_params: Mapping[str, object]) -> str:
        """Content address of one extractor configuration on this data."""
        return extractor_fingerprint(
            extractor_params,
            self.data_fingerprint,
            self.split_seed,
            self.validation_fraction,
        )

    @property
    def resident_bytes(self) -> int:
        """Bytes currently held by published packs."""
        return self._packs.total_bytes

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._packs

    # ------------------------------------------------------------- rung API

    def prepare(
        self,
        trial_fingerprints: Sequence[str],
        params_by_fingerprint: Mapping[str, Mapping[str, object]],
        engine: ParallelEngine,
        raw_spec: PackSpec,
    ) -> dict[str, PackSpec]:
        """Make every fingerprint attachable, encoding each at most once.

        Args:
            trial_fingerprints: One entry per pending trial (duplicates
                expected — they are what the cache amortises).
            params_by_fingerprint: Flat extractor overrides per distinct
                fingerprint.
            engine: Engine the encode batch fans over.
            raw_spec: Spec of the raw-environment pack encode workers
                attach (the ``"raw"`` prefix).

        Returns:
            Fingerprint → spec of its published (and now pinned) pack.
        """
        missing: list[str] = []
        for fp in dict.fromkeys(trial_fingerprints):
            if fp not in self._packs:
                missing.append(fp)
        if missing:
            with self._tracer.span(
                TUNE_ENCODE_SPAN,
                n_configs=len(missing),
                fingerprints=list(missing),
            ):
                tasks = [
                    EncodeTask(
                        fingerprint=fp,
                        extractor_params=dict(params_by_fingerprint[fp]),
                        validation_fraction=self.validation_fraction,
                        split_seed=self.split_seed,
                    )
                    for fp in missing
                ]
                outcomes = engine.map(
                    run_encode_task,
                    tasks,
                    initializer=init_experiment_worker,
                    initargs=(raw_spec,),
                )
            for outcome in outcomes:
                self._publish(outcome)
        # Per-trial accounting: the first trial of each missing
        # fingerprint paid for the encode, every other trial saved one.
        first_of = set(missing)
        specs: dict[str, PackSpec] = {}
        pinned: set[str] = set()
        for fp in trial_fingerprints:
            if fp in first_of:
                first_of.discard(fp)
                self.stats.misses += 1
                self._tracer.event(TUNE_CACHE_EVENT, fingerprint=fp,
                                   action="miss")
            else:
                self.stats.hits += 1
                self.stats.encode_seconds_saved += \
                    self._encode_seconds.get(fp, 0.0)
                self._tracer.event(TUNE_CACHE_EVENT, fingerprint=fp,
                                   action="hit")
            if fp not in pinned:
                specs[fp] = self._packs.pin(fp).spec
                pinned.add(fp)
        return specs

    def release(self, fingerprints: Sequence[str]) -> None:
        """Drop the rung's pins and enforce the byte budget.

        Args:
            fingerprints: The distinct fingerprints :meth:`prepare`
                pinned for the completed rung.
        """
        for fp in dict.fromkeys(fingerprints):
            self._packs.unpin(fp)
        for fp in self._packs.evict_to_budget():
            self._encode_seconds.pop(fp, None)
            self.stats.evictions += 1
            self._tracer.event(TUNE_CACHE_EVENT, fingerprint=fp,
                               action="evict")

    # ------------------------------------------------------------ internals

    def _publish(self, outcome: EncodeOutcome) -> None:
        pack = pack_train_test(outcome.fit_environments,
                               outcome.valid_environments)
        self._packs.put(outcome.fingerprint, pack)
        self._encode_seconds[outcome.fingerprint] = outcome.encode_seconds
        self.stats.encode_seconds += outcome.encode_seconds
        self.stats.published_bytes += pack.nbytes
        self._tracer.event(
            TUNE_CACHE_EVENT,
            fingerprint=outcome.fingerprint,
            action="publish",
            nbytes=pack.nbytes,
            encode_seconds=outcome.encode_seconds,
        )

    # ------------------------------------------------------------- cleanup

    def dispose(self) -> None:
        """Dispose every published pack (end of search)."""
        self._packs.clear()

    def __enter__(self) -> "ExtractorEncodingCache":
        return self

    def __exit__(self, *exc) -> None:
        self.dispose()
