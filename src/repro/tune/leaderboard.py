"""The tracked ``TUNE_leaderboard.json`` artifact.

One leaderboard aggregates the :class:`~repro.tune.search.SearchResult`
of every trainer searched in one ``repro tune`` invocation: a global
trial ranking, per-search rung histories, and the provenance needed to
reproduce it (objective, search seed, ASHA knobs, machine, git).

Two invariants the schema is built around:

* **Determinism** — everything except wall-clock fields is a pure
  function of (spaces, knobs, seed, data), so
  :func:`ranked_trials` (the payload minus ``train_seconds`` and
  timestamps) is bit-identical across ``--jobs`` levels and across
  resume; CI diffs exactly that projection.
* **Validity** — :func:`validate_leaderboard` is the single source of
  truth for required keys, mirroring the run-log's
  :func:`~repro.obs.runlog.validate_record`; CI gates artifact upload
  on it.
"""

from __future__ import annotations

import json
import pathlib
import time
import warnings
from typing import Sequence

from repro.obs.runlog import git_describe
from repro.tune.search import SearchResult

__all__ = [
    "LEADERBOARD_FORMAT",
    "LeaderboardError",
    "DirtyTreeWarning",
    "build_leaderboard",
    "validate_leaderboard",
    "ranked_trials",
    "write_leaderboard",
]

#: Version of the leaderboard payload schema written by this module.
#: v2 (over v1): every entry carries a ``search_cost`` object
#: (``train_seconds``, ``encode_seconds``, ``encode_cached`` — the joint
#: search's cost accounting); wall-clock members of it are stripped by
#: :func:`ranked_trials` exactly as ``train_seconds`` always was.
LEADERBOARD_FORMAT = 2

#: Required keys of the payload and of each global leaderboard entry.
_REQUIRED_TOP = (
    "format", "kind", "created_unix", "objective", "blend_weight",
    "seed", "search_config", "machine", "git", "searches", "leaderboard",
)
_REQUIRED_ENTRY = (
    "rank", "trainer", "trial", "objective_value", "params", "seed",
    "rung", "budget", "metrics", "search_cost",
)
_REQUIRED_SEARCH = ("trainer", "objective", "blend_weight", "rungs", "trials")


class LeaderboardError(ValueError):
    """A leaderboard payload violates the documented schema."""


class DirtyTreeWarning(UserWarning):
    """A tracked artifact is being stamped from a dirty git tree.

    A leaderboard whose ``git`` field ends in ``-dirty`` cannot be
    reproduced from any commit — the tree that produced it was never
    recorded.  CI turns this warning into a failure for tracked
    artifacts (``write_leaderboard(..., forbid_dirty=True)``)."""


def build_leaderboard(
    results: Sequence[SearchResult],
    *,
    seed: int,
    search_config: dict | None = None,
    machine: dict | None = None,
) -> dict:
    """Aggregate per-trainer search results into one leaderboard payload.

    The global ranking uses the same key as
    :meth:`SearchResult.ranked` — deepest rung reached, then objective
    value, then (trainer, trial id) as a deterministic tiebreak — so
    cross-trainer comparisons only ever favour trials that survived to
    comparable budgets.

    Args:
        results: One :class:`SearchResult` per searched trainer; all are
            expected to share objective and blend weight (the first's
            values are recorded as the payload's).
        seed: Root search seed (provenance).
        search_config: JSON-compatible ASHA/grid knobs (provenance).
        machine: Hardware/software context; defaults to
            :func:`repro.perfbench.machine_info`.

    Raises:
        ValueError: On an empty result list.
    """
    if not results:
        raise ValueError("build_leaderboard needs at least one SearchResult")
    if machine is None:
        from repro.perfbench import machine_info

        machine = machine_info()
    objective = results[0].objective
    blend_weight = results[0].blend_weight
    entries = []
    for result in results:
        for trial in result.trials:
            entries.append((
                result.trainer,
                trial,
                trial.objective_value(result.objective, result.blend_weight),
            ))
    entries.sort(key=lambda e: (-e[1].rung, -e[2], str(e[0]), e[1].trial_id))
    leaderboard = [
        {
            "rank": rank,
            "trainer": trainer,
            "objective_value": value,
            **trial.to_json(),
        }
        for rank, (trainer, trial, value) in enumerate(entries, start=1)
    ]
    return {
        "format": LEADERBOARD_FORMAT,
        "kind": "tune_leaderboard",
        "created_unix": time.time(),
        "objective": objective,
        "blend_weight": blend_weight,
        "seed": int(seed),
        "search_config": dict(search_config or {}),
        "machine": dict(machine),
        "git": git_describe(),
        "searches": [result.to_json() for result in results],
        "leaderboard": leaderboard,
    }


def validate_leaderboard(payload: object) -> dict:
    """Check a leaderboard payload against the schema; returns it.

    Raises:
        LeaderboardError: On missing keys, a wrong ``kind``/``format``,
            non-contiguous ranks or malformed entries.
    """
    if not isinstance(payload, dict):
        raise LeaderboardError("leaderboard payload is not a JSON object")
    missing = [k for k in _REQUIRED_TOP if k not in payload]
    if missing:
        raise LeaderboardError(f"payload is missing keys {missing}")
    if payload["kind"] != "tune_leaderboard":
        raise LeaderboardError(
            f"payload kind is {payload['kind']!r}, "
            "expected 'tune_leaderboard'"
        )
    if payload["format"] != LEADERBOARD_FORMAT:
        raise LeaderboardError(
            f"payload format {payload['format']!r} != {LEADERBOARD_FORMAT}"
        )
    if not isinstance(payload["searches"], list) or not payload["searches"]:
        raise LeaderboardError("payload 'searches' must be a non-empty list")
    for index, search in enumerate(payload["searches"]):
        if not isinstance(search, dict):
            raise LeaderboardError(f"search {index} is not an object")
        search_missing = [k for k in _REQUIRED_SEARCH if k not in search]
        if search_missing:
            raise LeaderboardError(
                f"search {index} is missing keys {search_missing}"
            )
    entries = payload["leaderboard"]
    if not isinstance(entries, list) or not entries:
        raise LeaderboardError("payload 'leaderboard' must be a non-empty list")
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise LeaderboardError(f"leaderboard entry {index} is not an object")
        entry_missing = [k for k in _REQUIRED_ENTRY if k not in entry]
        if entry_missing:
            raise LeaderboardError(
                f"leaderboard entry {index} is missing keys {entry_missing}"
            )
    ranks = [entry["rank"] for entry in entries]
    if ranks != list(range(1, len(entries) + 1)):
        raise LeaderboardError(
            f"leaderboard ranks must be 1..{len(entries)}, got {ranks}"
        )
    return payload


def ranked_trials(payload: dict) -> list[dict]:
    """The deterministic projection of a leaderboard: its global ranking
    minus wall-clock fields.

    This is what "bit-identical" means for a search: two payloads from
    the same (spaces, knobs, seed, data) — whatever ``--jobs`` level,
    cached or uncached joint encoding, with or without a resume — agree
    exactly on this list, while ``train_seconds`` / ``search_cost`` /
    ``created_unix`` / ``machine`` may differ.
    """
    return [
        {k: v for k, v in entry.items()
         if k not in ("train_seconds", "search_cost")}
        for entry in payload["leaderboard"]
    ]


def write_leaderboard(payload: dict, path: str | pathlib.Path,
                      *, forbid_dirty: bool = False) -> dict:
    """Validate and write the tracked leaderboard JSON; returns payload.

    Args:
        payload: A :func:`build_leaderboard` payload.
        path: Destination file.
        forbid_dirty: Escalate the :class:`DirtyTreeWarning` for
            dirty-tree provenance into a :class:`LeaderboardError` —
            what CI uses when regenerating tracked artifacts.

    Raises:
        LeaderboardError: On schema violations, or on a dirty git stamp
            with ``forbid_dirty=True``.
    """
    validate_leaderboard(payload)
    git = payload.get("git")
    if isinstance(git, str) and git.endswith("-dirty"):
        message = (
            f"stamping leaderboard {pathlib.Path(path).name} from a dirty "
            f"git tree ({git}): the payload cannot be reproduced from any "
            "commit — commit (or stash) before regenerating tracked "
            "artifacts"
        )
        if forbid_dirty:
            raise LeaderboardError(message)
        warnings.warn(message, DirtyTreeWarning, stacklevel=2)
    target = pathlib.Path(path)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                      encoding="utf-8")
    return payload
