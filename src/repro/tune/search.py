"""Hyper-parameter search over trainer configurations.

The production model "has to be updated periodically at a relatively high
frequency", which in practice means an automated retrain-and-select loop.
This module provides the selection half: a grid search over any trainer's
config space, scored on a held-out validation slice with the paper's
fairness-aware metrics, so e.g. λ and the MRQ length can be re-tuned on
every refresh.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.data.dataset import EnvironmentData
from repro.metrics.fairness import FairnessReport, evaluate_environments
from repro.train.base import Trainer

__all__ = ["TrialResult", "GridSearchResult", "grid_search", "split_environments"]

#: Builds a trainer from one point of the grid.
TrainerBuilder = Callable[..., Trainer]

#: Metric used to rank trials: one of the FairnessReport summary keys, or a
#: weighted blend via `objective="blend"`.
SUPPORTED_OBJECTIVES = ("mKS", "wKS", "mAUC", "wAUC", "blend")


@dataclass(frozen=True)
class TrialResult:
    """One grid point's configuration and validation scores."""

    params: Mapping[str, object]
    report: FairnessReport
    train_seconds: float

    def objective_value(self, objective: str, blend_weight: float) -> float:
        if objective == "blend":
            return (
                (1 - blend_weight) * self.report.mean_ks
                + blend_weight * self.report.worst_ks
            )
        return self.report.summary()[objective]


@dataclass(frozen=True)
class GridSearchResult:
    """All trials plus the selected best."""

    trials: tuple[TrialResult, ...]
    objective: str
    blend_weight: float
    best: TrialResult = field(hash=False, default=None)  # type: ignore[assignment]

    def ranked(self) -> list[TrialResult]:
        """Trials sorted best-first by the search objective."""
        return sorted(
            self.trials,
            key=lambda t: -t.objective_value(self.objective,
                                             self.blend_weight),
        )


def split_environments(
    environments: Sequence[EnvironmentData],
    validation_fraction: float = 0.25,
    seed: int = 0,
) -> tuple[list[EnvironmentData], list[EnvironmentData]]:
    """Row-split every environment into (fit, validation) parts.

    Stratifies by environment (each province contributes to both sides) so
    the validation fairness report covers the same provinces as training.
    """
    if not 0.0 < validation_fraction < 1.0:
        raise ValueError("validation_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    fit_parts, valid_parts = [], []
    for env in environments:
        order = rng.permutation(env.n_samples)
        n_valid = max(1, int(round(validation_fraction * env.n_samples)))
        if n_valid >= env.n_samples:
            raise ValueError(
                f"environment {env.name!r} too small to split "
                f"({env.n_samples} rows)"
            )
        valid_rows = order[:n_valid]
        fit_rows = order[n_valid:]
        fit_parts.append(
            EnvironmentData(env.name, env.features[fit_rows],
                            env.labels[fit_rows])
        )
        valid_parts.append(
            EnvironmentData(env.name, env.features[valid_rows],
                            env.labels[valid_rows])
        )
    return fit_parts, valid_parts


def grid_search(
    builder: TrainerBuilder,
    grid: Mapping[str, Sequence[object]],
    environments: Sequence[EnvironmentData],
    objective: str = "blend",
    blend_weight: float = 0.5,
    validation_fraction: float = 0.25,
    seed: int = 0,
) -> GridSearchResult:
    """Exhaustive search over a config grid with fairness-aware selection.

    Args:
        builder: Called with one keyword per grid axis (plus nothing else);
            must return an unfitted :class:`Trainer`.  Typically a lambda
            around a config dataclass, e.g.
            ``lambda **kw: LightMIRMTrainer(LightMIRMConfig(**kw))``.
        grid: Axis name -> candidate values.  The Cartesian product is
            evaluated.
        environments: Training environments; split per-province into fit
            and validation parts.
        objective: Ranking metric: "mKS", "wKS", "mAUC", "wAUC", or
            "blend" ((1-w)·mKS + w·wKS — the paper's dual goal).
        blend_weight: Worst-province weight of the blend objective.
        validation_fraction: Share of each environment held out.
        seed: Seed of the validation split.

    Returns:
        A :class:`GridSearchResult`; ``result.best.params`` holds the
        selected configuration.
    """
    if objective not in SUPPORTED_OBJECTIVES:
        raise ValueError(
            f"objective must be one of {SUPPORTED_OBJECTIVES}, got {objective!r}"
        )
    if not grid:
        raise ValueError("empty grid")
    if not 0.0 <= blend_weight <= 1.0:
        raise ValueError("blend_weight must be in [0, 1]")

    fit_envs, valid_envs = split_environments(
        environments, validation_fraction=validation_fraction, seed=seed
    )
    valid_labels = {e.name: e.labels for e in valid_envs}

    axes = list(grid)
    trials: list[TrialResult] = []
    for values in itertools.product(*(grid[a] for a in axes)):
        params = dict(zip(axes, values))
        trainer = builder(**params)
        start = time.perf_counter()
        result = trainer.fit(fit_envs)
        elapsed = time.perf_counter() - start
        scores = {
            e.name: result.model.predict_proba(result.theta, e.features)
            for e in valid_envs
        }
        report = evaluate_environments(valid_labels, scores)
        trials.append(
            TrialResult(params=params, report=report, train_seconds=elapsed)
        )

    best = max(
        trials, key=lambda t: t.objective_value(objective, blend_weight)
    )
    return GridSearchResult(
        trials=tuple(trials),
        objective=objective,
        blend_weight=blend_weight,
        best=best,
    )
