"""Search-result surface and the legacy ``grid_search`` shim.

The production model "has to be updated periodically at a relatively high
frequency", which in practice means an automated retrain-and-select loop.
This module holds the *result* half of that loop's vocabulary — the
unified :class:`TrialResult` / :class:`SearchResult` surface shared by
the grid and ASHA paths — plus :func:`split_environments` and the
deprecated dict-of-lists :func:`grid_search` entry point, which now
degenerates into the same scheduler that drives
:func:`~repro.tune.asha.run_asha` (mirroring how ``save_pipeline``
became a shim over :class:`~repro.serve.registry.ModelRegistry`).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.data.dataset import EnvironmentData
from repro.metrics.fairness import FairnessReport
from repro.train.base import Trainer

__all__ = [
    "SUPPORTED_OBJECTIVES",
    "TrialResult",
    "RungSummary",
    "SearchResult",
    "GridSearchResult",
    "check_objective",
    "grid_search",
    "split_environments",
]

#: Builds a trainer from one point of the grid (legacy shim surface).
TrainerBuilder = Callable[..., Trainer]

#: Metric used to rank trials: one of the FairnessReport summary keys, or a
#: weighted blend via `objective="blend"`.
SUPPORTED_OBJECTIVES = ("mKS", "wKS", "mAUC", "wAUC", "blend")

#: Domain-separation tag of the validation-split RNG stream ("spli").
_SPLIT_STREAM_TAG = 0x73706C69


def check_objective(objective: str, blend_weight: float) -> None:
    """Validate a ranking objective; shared by every search entry point.

    Raises:
        ValueError: On an unknown objective or out-of-range blend weight.
    """
    if objective not in SUPPORTED_OBJECTIVES:
        raise ValueError(
            f"objective must be one of {SUPPORTED_OBJECTIVES}, "
            f"got {objective!r}"
        )
    if not 0.0 <= blend_weight <= 1.0:
        raise ValueError("blend_weight must be in [0, 1]")


@dataclass(frozen=True)
class TrialResult:
    """One evaluated configuration's scores — grid point or ASHA trial.

    This is the unified per-trial surface: the grid shim and the ASHA
    scheduler both produce it, and ranking/serialization below never
    care which path a trial came from.

    Attributes:
        params: The configuration evaluated.
        report: Validation fairness report of the fitted head.
        train_seconds: Wall-clock of the fit (non-deterministic; excluded
            from bit-identity comparisons).
        trial_id: Stable identity within one search ("" for legacy grid
            trials built before ids existed).
        seed: Per-trial training seed (None when the builder owned it).
        rung: Highest completed rung (grid trials are all rung 0).
        budget: Epoch budget of that rung (None = the config's own).
        encode_seconds: Wall-clock of the trial's inline extractor
            fit + leaf-encode (0.0 for cached-attach and head-only
            trials; non-deterministic, excluded from bit-identity).
        encode_cached: Whether the trial attached a cached encoding
            (None for head-only trials with no extractor half).
    """

    params: Mapping[str, object]
    report: FairnessReport
    train_seconds: float
    trial_id: str = ""
    seed: int | None = None
    rung: int = 0
    budget: int | None = None
    encode_seconds: float = 0.0
    encode_cached: bool | None = None

    def objective_value(self, objective: str, blend_weight: float) -> float:
        """The trial's score under a ranking objective."""
        if objective == "blend":
            return (
                (1 - blend_weight) * self.report.mean_ks
                + blend_weight * self.report.worst_ks
            )
        return self.report.summary()[objective]

    def to_json(self) -> dict:
        """JSON-compatible record (leaderboard / run-log payloads)."""
        return {
            "trial": self.trial_id,
            "params": dict(self.params),
            "seed": self.seed,
            "rung": self.rung,
            "budget": self.budget,
            "train_seconds": self.train_seconds,
            "search_cost": {
                "train_seconds": self.train_seconds,
                "encode_seconds": self.encode_seconds,
                "encode_cached": self.encode_cached,
            },
            "metrics": self.report.summary(),
            "per_environment": {
                name: {"ks": scores.ks, "auc": scores.auc}
                for name, scores in self.report.per_environment.items()
            },
            "worst_ks_environment": self.report.worst_ks_environment,
        }


@dataclass(frozen=True)
class RungSummary:
    """One rung of a successive-halving schedule, after the fact.

    Attributes:
        rung: Rung index (0 = the cheapest budget).
        budget: Epoch budget every trial at this rung trained with
            (None for the degenerate single-rung grid).
        evaluated: Trial ids evaluated at this rung, in creation order.
        promoted: Trial ids promoted to the next rung (empty at the last).
    """

    rung: int
    budget: int | None
    evaluated: tuple[str, ...]
    promoted: tuple[str, ...]

    def to_json(self) -> dict:
        return {
            "rung": self.rung,
            "budget": self.budget,
            "evaluated": list(self.evaluated),
            "promoted": list(self.promoted),
        }


@dataclass(frozen=True)
class SearchResult:
    """All trials of one search plus the selected best.

    Shared by the grid and ASHA paths; the grid case is simply the
    degenerate single-rung schedule with an empty promotion history.
    """

    trials: tuple[TrialResult, ...]
    objective: str
    blend_weight: float
    best: TrialResult = field(hash=False, default=None)  # type: ignore[assignment]
    rungs: tuple[RungSummary, ...] = ()
    trainer: str | None = None

    def ranked(self) -> list[TrialResult]:
        """Trials sorted best-first: deepest rung reached, then the
        search objective, then trial id (a deterministic tiebreak)."""
        return sorted(
            self.trials,
            key=lambda t: (
                -t.rung,
                -t.objective_value(self.objective, self.blend_weight),
                t.trial_id,
            ),
        )

    def to_json(self) -> dict:
        """JSON-compatible record: ranked trials plus rung history."""
        ranked = self.ranked()
        return {
            "trainer": self.trainer,
            "objective": self.objective,
            "blend_weight": self.blend_weight,
            "rungs": [r.to_json() for r in self.rungs],
            "trials": [
                {
                    "rank": rank,
                    "objective_value": t.objective_value(
                        self.objective, self.blend_weight
                    ),
                    **t.to_json(),
                }
                for rank, t in enumerate(ranked, start=1)
            ],
        }


#: Backwards-compatible name: the old grid-only result type is now the
#: shared one.
GridSearchResult = SearchResult


def split_environments(
    environments: Sequence[EnvironmentData],
    validation_fraction: float = 0.25,
    seed: int | np.random.SeedSequence = 0,
) -> tuple[list[EnvironmentData], list[EnvironmentData]]:
    """Row-split every environment into (fit, validation) parts.

    Stratifies by environment (each province contributes to both sides) so
    the validation fairness report covers the same provinces as training.

    The shuffle RNG is derived from a tagged ``SeedSequence`` stream
    (``[seed, "spli"]``), matching the experiment runner's per-task
    seeding convention, instead of feeding the raw int to
    ``default_rng`` — a one-time change to which rows land in the
    validation slice for a given seed (see ``docs/tuning.md``).

    Args:
        environments: Per-province data slices.
        validation_fraction: Share of each environment held out.
        seed: Root entropy of the shuffle stream; pass an int (tagged
            internally) or a pre-derived ``SeedSequence``.
    """
    if not 0.0 < validation_fraction < 1.0:
        raise ValueError("validation_fraction must be in (0, 1)")
    if isinstance(seed, np.random.SeedSequence):
        stream = seed
    else:
        stream = np.random.SeedSequence([int(seed), _SPLIT_STREAM_TAG])
    rng = np.random.default_rng(stream)
    fit_parts, valid_parts = [], []
    for env in environments:
        order = rng.permutation(env.n_samples)
        n_valid = max(1, int(round(validation_fraction * env.n_samples)))
        if n_valid >= env.n_samples:
            raise ValueError(
                f"environment {env.name!r} too small to split "
                f"({env.n_samples} rows)"
            )
        valid_rows = order[:n_valid]
        fit_rows = order[n_valid:]
        fit_parts.append(
            EnvironmentData(env.name, env.features[fit_rows],
                            env.labels[fit_rows])
        )
        valid_parts.append(
            EnvironmentData(env.name, env.features[valid_rows],
                            env.labels[valid_rows])
        )
    return fit_parts, valid_parts


def grid_search(
    builder: TrainerBuilder,
    grid,
    environments: Sequence[EnvironmentData],
    objective: str = "blend",
    blend_weight: float = 0.5,
    validation_fraction: float = 0.25,
    seed: int = 0,
) -> SearchResult:
    """Exhaustive search over a config grid with fairness-aware selection.

    .. deprecated::
        Use a typed :class:`~repro.tune.space.HPSpace` with
        :func:`~repro.tune.asha.run_grid` (engine-driven, resumable) or
        :func:`~repro.tune.asha.run_asha` instead.  This shim builds the
        degenerate ``HPSpace.grid`` space and drives the same scheduler
        with the builder evaluated inline (closures cannot cross a
        process boundary); it will be removed in a future release.

    Args:
        builder: Called with one keyword per grid axis (plus nothing else);
            must return an unfitted :class:`Trainer`.  Typically a lambda
            around a config dataclass, e.g.
            ``lambda **kw: LightMIRMTrainer(LightMIRMConfig(**kw))``.
        grid: Axis name -> candidate values (the Cartesian product is
            evaluated), or an enumerable :class:`~repro.tune.space.HPSpace`
            / :class:`~repro.tune.space.JointHPSpace` used as-is.  For a
            joint space ``environments`` must be *raw* (un-encoded): each
            distinct extractor point is fitted + leaf-encoded once
            (memoized) and the builder receives only the head fields.
        objective: Ranking metric: "mKS", "wKS", "mAUC", "wAUC", or
            "blend" ((1-w)·mKS + w·wKS — the paper's dual goal).
        blend_weight: Worst-province weight of the blend objective.
        validation_fraction: Share of each environment held out.
        seed: Seed of the validation split.

    Returns:
        A :class:`SearchResult`; ``result.best.params`` holds the
        selected configuration.
    """
    warnings.warn(
        "grid_search is deprecated; use repro.tune.HPSpace with "
        "run_grid/run_asha (repro.tune.asha) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.tune.asha import run_builder_grid
    from repro.tune.space import HPSpace, JointHPSpace

    check_objective(objective, blend_weight)
    if isinstance(grid, (HPSpace, JointHPSpace)):
        space = grid
    else:
        if not grid:
            raise ValueError("empty grid")
        space = HPSpace.grid(None, grid)
    return run_builder_grid(
        builder,
        space,
        environments,
        objective=objective,
        blend_weight=blend_weight,
        validation_fraction=validation_fraction,
        seed=seed,
    )
