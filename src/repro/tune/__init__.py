"""Hyper-parameter search: typed spaces, ASHA scheduling, leaderboards.

The subsystem in one sentence: declare *what* to search with a typed
:class:`HPSpace` (validated against the trainer's config dataclass),
let :func:`run_asha` fan trials across the parallel engine on
per-trial ``SeedSequence`` streams (bit-reproducible at any ``--jobs``,
resumable from the obs run log), and read the answer off a
schema-validated leaderboard.

The legacy dict-of-lists :func:`grid_search` remains as a deprecated
shim over the same machinery.
"""

from repro.tune.asha import (
    ASHAConfig,
    run_asha,
    run_grid,
    rung_budgets,
    sample_trials,
    select_promotions,
)
from repro.tune.buffer import ResultBuffer, TrialRecord, load_trial_records
from repro.tune.leaderboard import (
    LEADERBOARD_FORMAT,
    LeaderboardError,
    build_leaderboard,
    ranked_trials,
    validate_leaderboard,
    write_leaderboard,
)
from repro.tune.search import (
    SUPPORTED_OBJECTIVES,
    GridSearchResult,
    RungSummary,
    SearchResult,
    TrialResult,
    grid_search,
    split_environments,
)
from repro.tune.space import (
    Choice,
    HPSpace,
    IntRange,
    LogUniform,
    ParamSpec,
    SpaceError,
    Uniform,
    default_space,
    register_space,
)

__all__ = [
    # spaces
    "SpaceError",
    "ParamSpec",
    "Uniform",
    "LogUniform",
    "Choice",
    "IntRange",
    "HPSpace",
    "default_space",
    "register_space",
    # scheduler
    "ASHAConfig",
    "run_asha",
    "run_grid",
    "rung_budgets",
    "sample_trials",
    "select_promotions",
    # results
    "SUPPORTED_OBJECTIVES",
    "TrialResult",
    "RungSummary",
    "SearchResult",
    "GridSearchResult",
    "grid_search",
    "split_environments",
    # persistence
    "ResultBuffer",
    "TrialRecord",
    "load_trial_records",
    "LEADERBOARD_FORMAT",
    "LeaderboardError",
    "build_leaderboard",
    "validate_leaderboard",
    "ranked_trials",
    "write_leaderboard",
]
