"""Hyper-parameter search: typed spaces, ASHA scheduling, leaderboards.

The subsystem in one sentence: declare *what* to search with a typed
:class:`HPSpace` (validated against the owning component's config
surface), let :func:`run_asha` fan trials across the parallel engine on
per-trial ``SeedSequence`` streams (bit-reproducible at any ``--jobs``,
resumable from the obs run log), and read the answer off a
schema-validated leaderboard.

Joint GBDT×head searches pair an extractor space with a head space
(:meth:`HPSpace.joint`) and run through :func:`run_joint_asha`, where
the content-addressed :class:`ExtractorEncodingCache` fits + leaf-
encodes each distinct extractor configuration exactly once and head
trials attach the published shared-memory encodings read-only.

The legacy dict-of-lists :func:`grid_search` remains as a deprecated
shim over the same machinery (joint spaces included).
"""

from repro.tune.asha import (
    ASHAConfig,
    run_asha,
    run_grid,
    run_joint_asha,
    rung_budgets,
    sample_joint_trials,
    sample_trials,
    select_promotions,
)
from repro.tune.buffer import ResultBuffer, TrialRecord, load_trial_records
from repro.tune.extractor_cache import (
    CacheStats,
    ExtractorEncodingCache,
    environments_fingerprint,
    extractor_fingerprint,
)
from repro.tune.leaderboard import (
    LEADERBOARD_FORMAT,
    DirtyTreeWarning,
    LeaderboardError,
    build_leaderboard,
    ranked_trials,
    validate_leaderboard,
    write_leaderboard,
)
from repro.tune.search import (
    SUPPORTED_OBJECTIVES,
    GridSearchResult,
    RungSummary,
    SearchResult,
    TrialResult,
    grid_search,
    split_environments,
)
from repro.tune.space import (
    EXTRACTOR_COMPONENT,
    Choice,
    HPSpace,
    IntRange,
    JointHPSpace,
    LogUniform,
    ParamSpec,
    SpaceError,
    Uniform,
    component_fields,
    default_extractor_space,
    default_space,
    register_space,
)

__all__ = [
    # spaces
    "SpaceError",
    "ParamSpec",
    "Uniform",
    "LogUniform",
    "Choice",
    "IntRange",
    "HPSpace",
    "JointHPSpace",
    "EXTRACTOR_COMPONENT",
    "component_fields",
    "default_space",
    "default_extractor_space",
    "register_space",
    # scheduler
    "ASHAConfig",
    "run_asha",
    "run_joint_asha",
    "run_grid",
    "rung_budgets",
    "sample_trials",
    "sample_joint_trials",
    "select_promotions",
    # extractor-encoding cache
    "CacheStats",
    "ExtractorEncodingCache",
    "environments_fingerprint",
    "extractor_fingerprint",
    # results
    "SUPPORTED_OBJECTIVES",
    "TrialResult",
    "RungSummary",
    "SearchResult",
    "GridSearchResult",
    "grid_search",
    "split_environments",
    # persistence
    "ResultBuffer",
    "TrialRecord",
    "load_trial_records",
    "LEADERBOARD_FORMAT",
    "LeaderboardError",
    "DirtyTreeWarning",
    "build_leaderboard",
    "validate_leaderboard",
    "ranked_trials",
    "write_leaderboard",
]
