"""Hyper-parameter search utilities."""

from repro.tune.search import (
    GridSearchResult,
    TrialResult,
    grid_search,
    split_environments,
)

__all__ = [
    "GridSearchResult",
    "TrialResult",
    "grid_search",
    "split_environments",
]
