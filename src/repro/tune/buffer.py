"""Persisted trial-result buffer: the search's memory, in the run log.

Every completed trial becomes one :class:`TrialRecord` held in a
:class:`ResultBuffer` and — when the search is traced — emitted as a
``tune_trial`` event in the obs run log.  Because trial sampling is a
pure function of (space, search seed), the run log *is* the search's
durable state: :func:`load_trial_records` reads a (possibly truncated)
log back into records, and the scheduler replays any (trial, rung) whose
record matches the regenerated trial instead of re-training it.  An
interrupted search therefore resumes to the bit-identical leaderboard —
floats survive the JSON round trip exactly (shortest-repr encoding).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass

from repro.metrics.fairness import EnvironmentScores, FairnessReport
from repro.obs.runlog import TUNE_TRIAL_EVENT
from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = ["TrialRecord", "ResultBuffer", "load_trial_records"]


@dataclass(frozen=True)
class TrialRecord:
    """One completed (trial, rung) evaluation, JSON-round-trippable.

    Attributes:
        trainer: Canonical trainer name (None for legacy builder trials).
        trial_id: Trial identity within the search.
        rung: Rung index the evaluation ran at.
        budget: Epoch budget of the rung (None = the config's own).
        params: The configuration evaluated.
        seed: Per-trial training seed (None for builder trials).
        train_seconds: Wall-clock of the fit.
        per_environment: Province -> {ks, auc, n_samples, n_positive}.
        skipped: Environments the fairness report skipped.
        encode_seconds: Wall-clock of the trial's inline extractor
            encode (0.0 for cached and head-only trials).
        encode_cached: Whether the trial attached a cached encoding
            (None for head-only trials).
    """

    trainer: str | None
    trial_id: str
    rung: int
    budget: int | None
    params: dict
    seed: int | None
    train_seconds: float
    per_environment: dict
    skipped: tuple[str, ...] = ()
    encode_seconds: float = 0.0
    encode_cached: bool | None = None

    @classmethod
    def from_report(
        cls,
        *,
        trainer: str | None,
        trial_id: str,
        rung: int,
        budget: int | None,
        params: dict,
        seed: int | None,
        train_seconds: float,
        report: FairnessReport,
        encode_seconds: float = 0.0,
        encode_cached: bool | None = None,
    ) -> "TrialRecord":
        """Record one evaluation from its live fairness report."""
        return cls(
            trainer=trainer,
            trial_id=trial_id,
            rung=rung,
            budget=budget,
            params=dict(params),
            seed=seed,
            train_seconds=float(train_seconds),
            encode_seconds=float(encode_seconds),
            encode_cached=encode_cached,
            per_environment={
                name: {
                    "ks": scores.ks,
                    "auc": scores.auc,
                    "n_samples": scores.n_samples,
                    "n_positive": scores.n_positive,
                }
                for name, scores in report.per_environment.items()
            },
            skipped=tuple(report.skipped),
        )

    def fairness_report(self) -> FairnessReport:
        """Rebuild the validation report (exact — floats round-trip)."""
        return FairnessReport(
            per_environment={
                name: EnvironmentScores(
                    environment=name,
                    ks=float(entry["ks"]),
                    auc=float(entry["auc"]),
                    n_samples=int(entry["n_samples"]),
                    n_positive=int(entry["n_positive"]),
                )
                for name, entry in self.per_environment.items()
            },
            skipped=tuple(self.skipped),
        )

    def to_fields(self) -> dict:
        """The ``tune_trial`` event payload of this record."""
        return {
            "trainer": self.trainer,
            "trial": self.trial_id,
            "rung": self.rung,
            "budget": self.budget,
            "params": dict(self.params),
            "seed": self.seed,
            "train_seconds": self.train_seconds,
            "encode_seconds": self.encode_seconds,
            "encode_cached": self.encode_cached,
            "per_environment": self.per_environment,
            "skipped": list(self.skipped),
        }

    @classmethod
    def from_fields(cls, fields: dict) -> "TrialRecord":
        """Inverse of :meth:`to_fields` (run-log replay)."""
        return cls(
            trainer=fields.get("trainer"),
            trial_id=fields["trial"],
            rung=int(fields["rung"]),
            budget=(None if fields.get("budget") is None
                    else int(fields["budget"])),
            params=dict(fields["params"]),
            seed=(None if fields.get("seed") is None
                  else int(fields["seed"])),
            train_seconds=float(fields["train_seconds"]),
            # .get defaults keep pre-joint-search logs replayable.
            encode_seconds=float(fields.get("encode_seconds", 0.0)),
            encode_cached=fields.get("encode_cached"),
            per_environment=dict(fields["per_environment"]),
            skipped=tuple(fields.get("skipped", ())),
        )


class ResultBuffer:
    """In-memory (trial, rung) -> record store that mirrors to a tracer.

    Args:
        tracer: Every :meth:`add` emits one ``tune_trial`` event here, so
            a traced search leaves a complete, resumable record stream —
            including records replayed from a previous run's log, which
            keeps the resumed log self-contained.
    """

    def __init__(self, tracer: Tracer | None = None):
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._records: dict[tuple[str | None, str, int], TrialRecord] = {}

    def add(self, record: TrialRecord) -> None:
        """Store one completed evaluation and emit its run-log event."""
        key = (record.trainer, record.trial_id, record.rung)
        if key in self._records:
            return
        self._records[key] = record
        self.tracer.event(TUNE_TRIAL_EVENT, **record.to_fields())

    def get(self, trainer: str | None, trial_id: str,
            rung: int) -> TrialRecord | None:
        """The stored record of one (trainer, trial, rung), if any."""
        return self._records.get((trainer, trial_id, rung))

    def records(self) -> list[TrialRecord]:
        """All stored records, in insertion order."""
        return list(self._records.values())

    def __len__(self) -> int:
        return len(self._records)


def load_trial_records(
    path: str | pathlib.Path,
) -> dict[tuple[str | None, str, int], TrialRecord]:
    """Read a run log's ``tune_trial`` events back into trial records.

    Deliberately tolerant where :class:`~repro.obs.runlog.RunLogReader`
    is strict: an interrupted search can leave a torn final line, and
    resume should salvage every complete record before it.  Malformed
    lines and non-trial records are skipped; on duplicate keys the last
    complete record wins.  Keys include the trainer because one log can
    hold several trainers' searches whose local trial ids collide.

    Args:
        path: A JSONL run log written by a traced search.

    Returns:
        ``(trainer, trial_id, rung) -> TrialRecord`` for every
        recoverable event.
    """
    records: dict[tuple[str | None, str, int], TrialRecord] = {}
    with pathlib.Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                decoded = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail of an interrupted run
            if (
                not isinstance(decoded, dict)
                or decoded.get("kind") != "event"
                or decoded.get("name") != TUNE_TRIAL_EVENT
            ):
                continue
            try:
                record = TrialRecord.from_fields(decoded["fields"])
            except (KeyError, TypeError, ValueError):
                continue
            records[(record.trainer, record.trial_id, record.rung)] = record
    return records
