"""Successive-halving (ASHA-style) search over the parallel engine.

The paper's headline numbers hinge on the IRM penalty settings (λ, α,
MRQ length L, decay γ); this module makes selecting them a first-class,
reproducible computation instead of a hand-picked constant.  The
schedule is synchronous successive halving: sample ``n_trials``
configurations from a typed :class:`~repro.tune.space.HPSpace`, train
every survivor at a geometrically growing epoch budget, and after each
rung promote only the top ``1/eta`` fraction (fairness-blend objective,
deterministic trial-id tiebreak).

Reproducibility rules, inherited from the experiment runner:

* Every trial owns a ``SeedSequence`` stream derived in the parent from
  ``(search seed, "tune", crc32(trainer))`` — one child per trial, split
  into a parameter-sampling stream and a training seed.  Workers never
  derive seeds, so :func:`run_asha` is bit-identical at any ``n_jobs``.
* Trials ship to workers as :class:`~repro.parallel.worker.TrialTask`
  recipes over one shared-memory pack; results come back in submission
  order.
* Every completed (trial, rung) lands in a
  :class:`~repro.tune.buffer.ResultBuffer` and — when traced — the run
  log, which is the search's durable state: pass the reloaded records
  back as ``resume`` and matching evaluations replay instead of
  retraining.
"""

from __future__ import annotations

import json
import time
import zlib
from dataclasses import dataclass, replace
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.data.dataset import EnvironmentData
from repro.obs.runlog import TUNE_RUNG_EVENT, TUNE_SPAN
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.parallel.engine import ParallelEngine
from repro.parallel.shared import (
    SharedArrayPack,
    environments_to_arrays,
    pack_train_test,
)
from repro.parallel.worker import (
    TrialOutcome,
    TrialTask,
    init_experiment_worker,
    run_trial_task,
)
from repro.train.registry import TrainerSpec, resolve_trainer_name
from repro.tune.buffer import ResultBuffer, TrialRecord
from repro.tune.extractor_cache import CacheStats, ExtractorEncodingCache
from repro.tune.search import (
    RungSummary,
    SearchResult,
    TrialResult,
    check_objective,
    split_environments,
)
from repro.tune.space import HPSpace, JointHPSpace, SpaceError

__all__ = [
    "ASHAConfig",
    "Trial",
    "rung_budgets",
    "sample_trials",
    "sample_joint_trials",
    "select_promotions",
    "run_asha",
    "run_joint_asha",
    "run_grid",
    "run_builder_grid",
]

#: Domain-separation tag of the tuning RNG stream root ("tune").
_TUNE_TAG = 0x74756E65

#: Extra tag of the extractor-configuration stream ("extr"), so the
#: joint search's extractor sampling never aliases its head sampling.
_EXTRACTOR_TAG = 0x65787472


@dataclass(frozen=True)
class ASHAConfig:
    """Knobs of one successive-halving search.

    Attributes:
        n_trials: Configurations sampled into rung 0.
        eta: Halving rate: each rung keeps the top ``1/eta`` fraction
            and multiplies the epoch budget by ``eta``.
        min_epochs: Budget of rung 0.
        max_epochs: Budget cap; rungs stop once the next budget would
            exceed it (see :func:`rung_budgets`).
        objective: Ranking metric — see
            :data:`~repro.tune.search.SUPPORTED_OBJECTIVES`.
        blend_weight: Worst-province weight of the ``"blend"`` objective.
        validation_fraction: Share of each environment held out for
            scoring trials (the true test set never enters the search).
        seed: Root entropy of the whole search: the validation split,
            every trial's sampled configuration and every training seed
            derive from it.
    """

    n_trials: int = 9
    eta: int = 3
    min_epochs: int = 5
    max_epochs: int = 45
    objective: str = "blend"
    blend_weight: float = 0.5
    validation_fraction: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_trials < 1:
            raise ValueError("n_trials must be >= 1")
        if self.eta < 2:
            raise ValueError("eta must be >= 2")
        if self.min_epochs < 1:
            raise ValueError("min_epochs must be >= 1")
        if self.max_epochs < self.min_epochs:
            raise ValueError("max_epochs must be >= min_epochs")
        check_objective(self.objective, self.blend_weight)
        if not 0.0 < self.validation_fraction < 1.0:
            raise ValueError("validation_fraction must be in (0, 1)")


def rung_budgets(config: ASHAConfig) -> list[int]:
    """Epoch budgets of every rung: ``min_epochs * eta^k`` up to the cap.

    ``min_epochs=5, eta=3, max_epochs=45`` → ``[5, 15, 45]``.
    """
    budgets = []
    budget = config.min_epochs
    while budget <= config.max_epochs:
        budgets.append(budget)
        budget *= config.eta
    return budgets


def select_promotions(scores: Mapping[str, float], eta: int) -> list[str]:
    """Trial ids promoted to the next rung: the top ``1/eta`` fraction.

    At least one trial always survives.  Ties break on trial id, so the
    promotion set is a pure function of the scores — no dict-order or
    scheduling dependence.

    Args:
        scores: Trial id -> objective value at the current rung.
        eta: Halving rate.

    Returns:
        Promoted ids, best-first.
    """
    n_promote = max(1, len(scores) // eta)
    ranked = sorted(scores, key=lambda tid: (-scores[tid], tid))
    return ranked[:n_promote]


@dataclass(frozen=True)
class Trial:
    """One sampled configuration with its pre-derived training seed."""

    trial_id: str
    params: dict
    seed: int


def sample_trials(space: HPSpace, n_trials: int, seed: int,
                  trainer: str) -> list[Trial]:
    """Sample the rung-0 trial population from per-trial seed streams.

    The root stream is ``SeedSequence([seed, "tune", crc32(trainer)])``
    — tagged so tuning never shares a stream with data generation or the
    experiment fan-out, and trainer-salted so a multi-trainer search
    explores independently per trainer.  Each trial's child splits into
    a parameter-sampling stream and a training seed; both depend only on
    ``(seed, trainer, trial index)``, never on scheduling.
    """
    root = np.random.SeedSequence(
        [int(seed), _TUNE_TAG, zlib.crc32(trainer.encode("utf-8"))]
    )
    trials = []
    for index, child in enumerate(root.spawn(n_trials)):
        param_stream, train_stream = child.spawn(2)
        params = space.sample(np.random.default_rng(param_stream))
        trials.append(Trial(
            trial_id=f"t{index:03d}",
            params=params,
            seed=int(train_stream.generate_state(1)[0]),
        ))
    return trials


def sample_joint_trials(space: JointHPSpace, n_trials: int,
                        n_extractors: int, seed: int,
                        trainer: str) -> list[Trial]:
    """Sample joint (extractor, head) trials with shared extractor configs.

    Sampling every trial its own continuous extractor configuration
    would make every fingerprint distinct and the encoding cache inert;
    instead ``n_extractors`` configurations are drawn from a separately
    tagged stream and assigned round-robin — trial ``i`` gets
    configuration ``i % n_extractors`` — so the trials-per-distinct-
    extractor ratio (the cache's amortisation factor) is an explicit
    search knob.  Head halves are sampled exactly as
    :func:`sample_trials` samples them (same root, same per-trial
    streams), and everything remains a pure function of ``(seed,
    trainer, index)``.
    """
    if n_extractors < 1:
        raise ValueError("n_extractors must be >= 1")
    trainer_salt = zlib.crc32(trainer.encode("utf-8"))
    extractor_root = np.random.SeedSequence(
        [int(seed), _TUNE_TAG, _EXTRACTOR_TAG, trainer_salt]
    )
    configs = [
        space.extractor.sample(np.random.default_rng(child))
        for child in extractor_root.spawn(n_extractors)
    ]
    head_root = np.random.SeedSequence([int(seed), _TUNE_TAG, trainer_salt])
    trials = []
    for index, child in enumerate(head_root.spawn(n_trials)):
        param_stream, train_stream = child.spawn(2)
        params = space.head.sample(np.random.default_rng(param_stream))
        params["extractor"] = dict(configs[index % n_extractors])
        trials.append(Trial(
            trial_id=f"t{index:03d}",
            params=params,
            seed=int(train_stream.generate_state(1)[0]),
        ))
    return trials


# ---------------------------------------------------------------- rung core


def _reusable(
    resume: Mapping[tuple[str | None, str, int], TrialRecord] | None,
    trainer: str | None,
    trial: Trial,
    rung: int,
    budget: int | None,
) -> TrialRecord | None:
    """A previous run's record for this exact (trial, rung), if it still
    describes the same work: same trainer, params, seed and budget.  A
    search re-run with different knobs regenerates different trials, so
    stale records simply stop matching instead of poisoning the resume."""
    if resume is None:
        return None
    record = resume.get((trainer, trial.trial_id, rung))
    if record is None:
        return None
    if (
        record.params == trial.params
        and record.seed == trial.seed
        and record.budget == budget
    ):
        return record
    return None


def _evaluate_rung(
    trainer: str | None,
    trials: Sequence[Trial],
    rung: int,
    budget: int | None,
    evaluate: Callable[[list[Trial]], list[TrialOutcome]],
    buffer: ResultBuffer,
    resume: Mapping[tuple[str | None, str, int], TrialRecord] | None,
) -> dict[str, TrialResult]:
    """Score every trial at one rung, replaying resumable records.

    Cache hits skip training entirely; misses go through ``evaluate``
    (the engine fan-out, or the inline builder path) as one batch.
    Every result — replayed or fresh — is re-recorded into ``buffer`` in
    trial order, so the current run log is self-contained.
    """
    reports: dict[str, tuple] = {}
    pending: list[Trial] = []
    for trial in trials:
        record = _reusable(resume, trainer, trial, rung, budget)
        if record is not None:
            reports[trial.trial_id] = (record.fairness_report(),
                                       record.train_seconds,
                                       record.encode_seconds,
                                       record.encode_cached)
        else:
            pending.append(trial)
    for trial, outcome in zip(pending, evaluate(pending) if pending else []):
        reports[trial.trial_id] = (outcome.report, outcome.train_seconds,
                                   outcome.encode_seconds,
                                   outcome.encode_cached)
    results: dict[str, TrialResult] = {}
    for trial in trials:
        report, train_seconds, encode_seconds, encode_cached = \
            reports[trial.trial_id]
        buffer.add(TrialRecord.from_report(
            trainer=trainer,
            trial_id=trial.trial_id,
            rung=rung,
            budget=budget,
            params=trial.params,
            seed=trial.seed,
            train_seconds=train_seconds,
            report=report,
            encode_seconds=encode_seconds,
            encode_cached=encode_cached,
        ))
        results[trial.trial_id] = TrialResult(
            params=dict(trial.params),
            report=report,
            train_seconds=train_seconds,
            trial_id=trial.trial_id,
            seed=trial.seed,
            rung=rung,
            budget=budget,
            encode_seconds=encode_seconds,
            encode_cached=encode_cached,
        )
    return results


def _drive_rungs(
    trainer: str,
    trials: list[Trial],
    budgets: Sequence[int | None],
    evaluate_factory: Callable[[int, int | None],
                               Callable[[list[Trial]], list[TrialOutcome]]],
    buffer: ResultBuffer,
    resume: Mapping[tuple[str | None, str, int], TrialRecord] | None,
    *,
    objective: str,
    blend_weight: float,
    eta: int | None,
    tracer: Tracer,
) -> tuple[dict[str, TrialResult], list[RungSummary]]:
    """The budget-ladder loop: evaluate, summarise, promote, repeat.

    Shared by the head-only and joint schedulers, which differ only in
    how a rung's pending trials become engine tasks — that part arrives
    as ``evaluate_factory(rung, budget)``.
    """
    best_results: dict[str, TrialResult] = {}
    rungs: list[RungSummary] = []
    survivors = list(trials)
    for rung, budget in enumerate(budgets):
        results = _evaluate_rung(
            trainer, survivors, rung, budget,
            evaluate_factory(rung, budget), buffer, resume,
        )
        best_results.update(results)
        last_rung = rung + 1 == len(budgets)
        if eta is None or last_rung:
            promoted: list[str] = []
        else:
            scores = {
                tid: r.objective_value(objective, blend_weight)
                for tid, r in results.items()
            }
            promoted = select_promotions(scores, eta)
        evaluated = tuple(t.trial_id for t in survivors)
        rungs.append(RungSummary(
            rung=rung, budget=budget,
            evaluated=evaluated, promoted=tuple(promoted),
        ))
        tracer.event(
            TUNE_RUNG_EVENT,
            trainer=trainer,
            rung=rung,
            budget=budget,
            evaluated=list(evaluated),
            promoted=list(promoted),
        )
        if eta is None or last_rung:
            break
        keep = set(promoted)
        survivors = [t for t in survivors if t.trial_id in keep]
    return best_results, rungs


def _trial_spec(trainer: str, params: Mapping[str, object],
                budget: int | None) -> TrainerSpec:
    """The head trainer recipe of one trial at one budget."""
    if budget is None:
        return TrainerSpec.of(trainer, **params)
    return TrainerSpec.of(trainer, n_epochs=budget, **params)


def _run_schedule(
    trainer: str,
    trials: list[Trial],
    budgets: Sequence[int | None],
    environments: Sequence[EnvironmentData],
    *,
    objective: str,
    blend_weight: float,
    validation_fraction: float,
    seed: int,
    eta: int | None,
    n_jobs: int,
    tracer: Tracer,
    resume: Mapping[tuple[str | None, str, int], TrialRecord] | None,
) -> SearchResult:
    """Drive a trial population through a budget ladder over the engine.

    Shared by ASHA (several budgets, promotions between them) and the
    engine-driven grid (one budget, no promotions — ``eta=None``).
    """
    fit_envs, valid_envs = split_environments(
        environments, validation_fraction, seed=seed
    )
    # Validation doubles as the workers' "test" prefix: trials are scored
    # on held-out rows, never on the true test environments.
    pack = pack_train_test(fit_envs, valid_envs)
    engine = ParallelEngine(n_jobs=n_jobs)
    buffer = ResultBuffer(tracer)
    try:
        with tracer.span(
            TUNE_SPAN,
            trainer=trainer,
            n_trials=len(trials),
            budgets=list(budgets),
            eta=eta,
            objective=objective,
            blend_weight=blend_weight,
            seed=seed,
            n_jobs=n_jobs,
        ):
            def evaluate_factory(rung: int, budget: int | None):
                def evaluate(pending: list[Trial]) -> list[TrialOutcome]:
                    tasks = [
                        TrialTask(
                            trial_id=t.trial_id,
                            rung=rung,
                            budget=budget,
                            spec=_trial_spec(trainer, t.params, budget),
                            seed=t.seed,
                        )
                        for t in pending
                    ]
                    return engine.map(
                        run_trial_task,
                        tasks,
                        initializer=init_experiment_worker,
                        initargs=(pack.spec,),
                    )
                return evaluate

            best_results, rungs = _drive_rungs(
                trainer, trials, budgets, evaluate_factory, buffer, resume,
                objective=objective, blend_weight=blend_weight, eta=eta,
                tracer=tracer,
            )
    finally:
        pack.dispose()
    result = SearchResult(
        trials=tuple(best_results[t.trial_id] for t in trials),
        objective=objective,
        blend_weight=blend_weight,
        rungs=tuple(rungs),
        trainer=trainer,
    )
    return replace(result, best=result.ranked()[0])


# -------------------------------------------------------------- entry points


def run_asha(
    space: HPSpace,
    environments: Sequence[EnvironmentData],
    config: ASHAConfig | None = None,
    *,
    n_jobs: int = 1,
    tracer: Tracer = NULL_TRACER,
    resume: Mapping[tuple[str | None, str, int], TrialRecord] | None = None,
) -> SearchResult:
    """Successive-halving search over a trainer-bound space.

    Args:
        space: A :class:`HPSpace` bound to a registered trainer.
        environments: Training environments; each is row-split into fit
            and validation parts (the validation side scores trials).
        config: Search knobs; defaults to :class:`ASHAConfig`.
        n_jobs: Worker processes for the trial fan-out.  Any value
            yields bit-identical results — seeds belong to trials.
        tracer: Run tracer; the search runs inside one ``tune_search``
            span with per-trial ``tune_trial`` and per-rung ``tune_rung``
            events, making the log the search's durable state.
        resume: ``(trainer, trial_id, rung) -> TrialRecord`` from a previous
            run's log (:func:`~repro.tune.buffer.load_trial_records`);
            records matching regenerated trials replay instead of
            retraining.

    Returns:
        A :class:`SearchResult` whose ``best`` reached the deepest rung
        with the highest objective.

    Raises:
        SpaceError: For an unbound space — scheduling requires a
            registry name to rebuild trainers in workers.
    """
    config = config or ASHAConfig()
    if space.trainer is None:
        raise SpaceError(
            "run_asha requires a trainer-bound HPSpace; unbound spaces "
            "only support the inline run_builder_grid path"
        )
    trainer = resolve_trainer_name(space.trainer)
    trials = sample_trials(space, config.n_trials, config.seed, trainer)
    return _run_schedule(
        trainer,
        trials,
        rung_budgets(config),
        environments,
        objective=config.objective,
        blend_weight=config.blend_weight,
        validation_fraction=config.validation_fraction,
        seed=config.seed,
        eta=config.eta,
        n_jobs=n_jobs,
        tracer=tracer,
        resume=resume,
    )


def run_joint_asha(
    space: JointHPSpace,
    environments: Sequence[EnvironmentData],
    config: ASHAConfig | None = None,
    *,
    n_extractors: int = 3,
    n_jobs: int = 1,
    tracer: Tracer = NULL_TRACER,
    resume: Mapping[tuple[str | None, str, int], TrialRecord] | None = None,
    use_cache: bool = True,
    cache_bytes: int | None = None,
) -> tuple[SearchResult, CacheStats | None]:
    """Joint GBDT×head successive-halving over *raw* environments.

    Extends :func:`run_asha` with an extractor half: each trial carries
    one of ``n_extractors`` shared GBDT configurations
    (:func:`sample_joint_trials`), and the expensive fit + leaf-encode
    runs **once per distinct configuration** through the
    content-addressed :class:`~repro.tune.extractor_cache
    .ExtractorEncodingCache` — itself fanned over the engine — with head
    trials attaching the published shared-memory packs read-only.

    Bit-identity holds along both axes: any ``n_jobs`` (seeds belong to
    trials), and cached vs ``use_cache=False`` (both paths run the same
    pure encode pipeline; the uncached baseline simply re-runs it inside
    every trial, which is what ``BENCH_tune.json`` measures).

    Args:
        space: A :class:`~repro.tune.space.JointHPSpace`
            (:meth:`HPSpace.joint`).
        environments: Raw (un-encoded) per-province environments.
        config: Search knobs; defaults to :class:`ASHAConfig`.
        n_extractors: Distinct extractor configurations shared
            round-robin across trials.
        n_jobs: Worker processes for both fan-outs.
        tracer: Run tracer; adds ``tune_encode`` spans and ``tune_cache``
            events to the usual search stream.
        resume: As :func:`run_asha`.
        use_cache: ``False`` runs the per-trial inline-encode baseline.
        cache_bytes: Optional resident-byte budget of the pack store
            (LRU eviction; evicted encodings re-encode on demand).

    Returns:
        ``(search result, cache stats)`` — stats are ``None`` when
        ``use_cache=False``.

    Raises:
        TypeError: On a head-only space — use :func:`run_asha` there.
    """
    if not isinstance(space, JointHPSpace):
        raise TypeError(
            "run_joint_asha needs a JointHPSpace (HPSpace.joint); "
            "head-only spaces go through run_asha"
        )
    config = config or ASHAConfig()
    trainer = resolve_trainer_name(space.trainer)
    trials = sample_joint_trials(
        space, config.n_trials, n_extractors, config.seed, trainer
    )
    arrays, meta = environments_to_arrays(list(environments), "raw")
    raw_pack = SharedArrayPack.pack(arrays, meta)
    engine = ParallelEngine(n_jobs=n_jobs)
    buffer = ResultBuffer(tracer)
    cache = (
        ExtractorEncodingCache(
            environments,
            validation_fraction=config.validation_fraction,
            split_seed=config.seed,
            max_bytes=cache_bytes,
            tracer=tracer,
        )
        if use_cache
        else None
    )
    try:
        with tracer.span(
            TUNE_SPAN,
            trainer=trainer,
            n_trials=len(trials),
            budgets=rung_budgets(config),
            eta=config.eta,
            objective=config.objective,
            blend_weight=config.blend_weight,
            seed=config.seed,
            n_jobs=n_jobs,
            joint=True,
            n_extractors=n_extractors,
            cached=use_cache,
            cache_bytes=cache_bytes,
        ):
            def evaluate_factory(rung: int, budget: int | None):
                def evaluate(pending: list[Trial]) -> list[TrialOutcome]:
                    extractor_of = {
                        t.trial_id: dict(t.params["extractor"])
                        for t in pending
                    }
                    head_of = {
                        t.trial_id: {k: v for k, v in t.params.items()
                                     if k != "extractor"}
                        for t in pending
                    }
                    specs_by_fp: dict = {}
                    fps: dict[str, str] = {}
                    if cache is not None:
                        fps = {
                            tid: cache.fingerprint(params)
                            for tid, params in extractor_of.items()
                        }
                        specs_by_fp = cache.prepare(
                            [fps[t.trial_id] for t in pending],
                            {fps[tid]: extractor_of[tid] for tid in fps},
                            engine,
                            raw_pack.spec,
                        )
                    try:
                        tasks = []
                        for t in pending:
                            spec = _trial_spec(
                                trainer, head_of[t.trial_id], budget
                            )
                            if cache is not None:
                                task = TrialTask(
                                    trial_id=t.trial_id, rung=rung,
                                    budget=budget, spec=spec, seed=t.seed,
                                    pack=specs_by_fp[fps[t.trial_id]],
                                )
                            else:
                                task = TrialTask(
                                    trial_id=t.trial_id, rung=rung,
                                    budget=budget, spec=spec, seed=t.seed,
                                    extractor_params=extractor_of[t.trial_id],
                                    validation_fraction=(
                                        config.validation_fraction
                                    ),
                                    split_seed=config.seed,
                                )
                            tasks.append(task)
                        return engine.map(
                            run_trial_task,
                            tasks,
                            initializer=init_experiment_worker,
                            initargs=(raw_pack.spec,),
                        )
                    finally:
                        if cache is not None:
                            cache.release(list(specs_by_fp))
                return evaluate

            best_results, rungs = _drive_rungs(
                trainer, trials, rung_budgets(config), evaluate_factory,
                buffer, resume,
                objective=config.objective,
                blend_weight=config.blend_weight,
                eta=config.eta,
                tracer=tracer,
            )
    finally:
        raw_pack.dispose()
        if cache is not None:
            cache.dispose()
    result = SearchResult(
        trials=tuple(best_results[t.trial_id] for t in trials),
        objective=config.objective,
        blend_weight=config.blend_weight,
        rungs=tuple(rungs),
        trainer=trainer,
    )
    result = replace(result, best=result.ranked()[0])
    return result, (cache.stats if cache is not None else None)


def run_grid(
    space: HPSpace,
    environments: Sequence[EnvironmentData],
    *,
    objective: str = "blend",
    blend_weight: float = 0.5,
    validation_fraction: float = 0.25,
    seed: int = 0,
    n_epochs: int | None = None,
    n_jobs: int = 1,
    tracer: Tracer = NULL_TRACER,
    resume: Mapping[tuple[str | None, str, int], TrialRecord] | None = None,
) -> SearchResult:
    """Exhaustive engine-driven search over an enumerable bound space.

    The degenerate single-rung schedule: every grid point is one trial,
    nothing is promoted.  Trials still get independent training seeds
    from the tagged per-trial streams, results still flow through the
    buffer/run-log machinery, and ``n_jobs``/``resume`` work exactly as
    in :func:`run_asha`.

    Args:
        n_epochs: Epoch budget of every trial (``None`` keeps each
            config's own default).
        (others): As :func:`run_asha`.
    """
    check_objective(objective, blend_weight)
    if space.trainer is None:
        raise SpaceError(
            "run_grid requires a trainer-bound HPSpace; unbound spaces "
            "only support the inline run_builder_grid path"
        )
    trainer = resolve_trainer_name(space.trainer)
    root = np.random.SeedSequence(
        [int(seed), _TUNE_TAG, zlib.crc32(trainer.encode("utf-8"))]
    )
    points = space.grid_points()
    trials = [
        Trial(
            trial_id=f"g{index:03d}",
            params=dict(params),
            seed=int(child.spawn(2)[1].generate_state(1)[0]),
        )
        for (index, params), child in zip(enumerate(points),
                                          root.spawn(len(points)))
    ]
    return _run_schedule(
        trainer,
        trials,
        [n_epochs],
        environments,
        objective=objective,
        blend_weight=blend_weight,
        validation_fraction=validation_fraction,
        seed=seed,
        eta=None,
        n_jobs=n_jobs,
        tracer=tracer,
        resume=resume,
    )


def run_builder_grid(
    builder: Callable,
    space: HPSpace | JointHPSpace,
    environments: Sequence[EnvironmentData],
    *,
    objective: str = "blend",
    blend_weight: float = 0.5,
    validation_fraction: float = 0.25,
    seed: int = 0,
) -> SearchResult:
    """Inline grid evaluation through a trainer-builder callable.

    The compatibility path under the deprecated
    :func:`~repro.tune.search.grid_search`: a builder closure cannot
    cross a process boundary or be validated against a config dataclass,
    so every grid point is built and fitted in-process.  Results use the
    same :class:`SearchResult` surface as the engine paths.

    Joint spaces work too: ``environments`` are then *raw*, each grid
    point's ``"extractor"`` sub-dict selects a GBDT configuration that is
    fitted + leaf-encoded once per distinct configuration (the grid is
    extractor-major, so the memo hits on consecutive points), and the
    builder receives only the head fields.
    """
    from repro.experiments.runner import evaluate_result_on
    from repro.gbdt.packing import fit_extractor_encode
    from repro.pipeline.extractor import default_gbdt_params

    check_objective(objective, blend_weight)
    joint = isinstance(space, JointHPSpace)
    if not joint:
        fit_envs, valid_envs = split_environments(
            environments, validation_fraction, seed=seed
        )
    encoded_memo: dict[str, tuple[list, list]] = {}

    def encoded_split(extractor_params: dict):
        key = json.dumps(extractor_params, sort_keys=True, default=str)
        if key in encoded_memo:
            return (*encoded_memo[key], 0.0, True)
        params = default_gbdt_params().replace_flat(extractor_params)
        _, encoded, encode_seconds = fit_extractor_encode(
            params, list(environments), holdout_seed=seed
        )
        split = split_environments(encoded, validation_fraction, seed=seed)
        encoded_memo[key] = split
        return (*split, encode_seconds, False)

    trials = []
    for index, params in enumerate(space.grid_points()):
        encode_seconds, encode_cached = 0.0, None
        if joint:
            head_params = {k: v for k, v in params.items()
                           if k != "extractor"}
            env_fit, env_valid, encode_seconds, encode_cached = \
                encoded_split(dict(params["extractor"]))
        else:
            head_params = params
            env_fit, env_valid = fit_envs, valid_envs
        started = time.perf_counter()
        result = builder(**head_params).fit(env_fit)
        train_seconds = time.perf_counter() - started
        report = evaluate_result_on(result, env_valid)
        trials.append(TrialResult(
            params=dict(params),
            report=report,
            train_seconds=train_seconds,
            trial_id=f"g{index:03d}",
            seed=None,
            rung=0,
            budget=None,
            encode_seconds=encode_seconds,
            encode_cached=encode_cached,
        ))
    rungs = (RungSummary(
        rung=0, budget=None,
        evaluated=tuple(t.trial_id for t in trials),
        promoted=(),
    ),)
    result = SearchResult(
        trials=tuple(trials),
        objective=objective,
        blend_weight=blend_weight,
        rungs=rungs,
        trainer=space.trainer,
    )
    return replace(result, best=result.ranked()[0])
