"""Successive-halving (ASHA-style) search over the parallel engine.

The paper's headline numbers hinge on the IRM penalty settings (λ, α,
MRQ length L, decay γ); this module makes selecting them a first-class,
reproducible computation instead of a hand-picked constant.  The
schedule is synchronous successive halving: sample ``n_trials``
configurations from a typed :class:`~repro.tune.space.HPSpace`, train
every survivor at a geometrically growing epoch budget, and after each
rung promote only the top ``1/eta`` fraction (fairness-blend objective,
deterministic trial-id tiebreak).

Reproducibility rules, inherited from the experiment runner:

* Every trial owns a ``SeedSequence`` stream derived in the parent from
  ``(search seed, "tune", crc32(trainer))`` — one child per trial, split
  into a parameter-sampling stream and a training seed.  Workers never
  derive seeds, so :func:`run_asha` is bit-identical at any ``n_jobs``.
* Trials ship to workers as :class:`~repro.parallel.worker.TrialTask`
  recipes over one shared-memory pack; results come back in submission
  order.
* Every completed (trial, rung) lands in a
  :class:`~repro.tune.buffer.ResultBuffer` and — when traced — the run
  log, which is the search's durable state: pass the reloaded records
  back as ``resume`` and matching evaluations replay instead of
  retraining.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, replace
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.data.dataset import EnvironmentData
from repro.obs.runlog import TUNE_RUNG_EVENT, TUNE_SPAN
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.parallel.engine import ParallelEngine
from repro.parallel.shared import pack_train_test
from repro.parallel.worker import (
    TrialOutcome,
    TrialTask,
    init_experiment_worker,
    run_trial_task,
)
from repro.train.registry import TrainerSpec, resolve_trainer_name
from repro.tune.buffer import ResultBuffer, TrialRecord
from repro.tune.search import (
    RungSummary,
    SearchResult,
    TrialResult,
    check_objective,
    split_environments,
)
from repro.tune.space import HPSpace, SpaceError

__all__ = [
    "ASHAConfig",
    "Trial",
    "rung_budgets",
    "sample_trials",
    "select_promotions",
    "run_asha",
    "run_grid",
    "run_builder_grid",
]

#: Domain-separation tag of the tuning RNG stream root ("tune").
_TUNE_TAG = 0x74756E65


@dataclass(frozen=True)
class ASHAConfig:
    """Knobs of one successive-halving search.

    Attributes:
        n_trials: Configurations sampled into rung 0.
        eta: Halving rate: each rung keeps the top ``1/eta`` fraction
            and multiplies the epoch budget by ``eta``.
        min_epochs: Budget of rung 0.
        max_epochs: Budget cap; rungs stop once the next budget would
            exceed it (see :func:`rung_budgets`).
        objective: Ranking metric — see
            :data:`~repro.tune.search.SUPPORTED_OBJECTIVES`.
        blend_weight: Worst-province weight of the ``"blend"`` objective.
        validation_fraction: Share of each environment held out for
            scoring trials (the true test set never enters the search).
        seed: Root entropy of the whole search: the validation split,
            every trial's sampled configuration and every training seed
            derive from it.
    """

    n_trials: int = 9
    eta: int = 3
    min_epochs: int = 5
    max_epochs: int = 45
    objective: str = "blend"
    blend_weight: float = 0.5
    validation_fraction: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_trials < 1:
            raise ValueError("n_trials must be >= 1")
        if self.eta < 2:
            raise ValueError("eta must be >= 2")
        if self.min_epochs < 1:
            raise ValueError("min_epochs must be >= 1")
        if self.max_epochs < self.min_epochs:
            raise ValueError("max_epochs must be >= min_epochs")
        check_objective(self.objective, self.blend_weight)
        if not 0.0 < self.validation_fraction < 1.0:
            raise ValueError("validation_fraction must be in (0, 1)")


def rung_budgets(config: ASHAConfig) -> list[int]:
    """Epoch budgets of every rung: ``min_epochs * eta^k`` up to the cap.

    ``min_epochs=5, eta=3, max_epochs=45`` → ``[5, 15, 45]``.
    """
    budgets = []
    budget = config.min_epochs
    while budget <= config.max_epochs:
        budgets.append(budget)
        budget *= config.eta
    return budgets


def select_promotions(scores: Mapping[str, float], eta: int) -> list[str]:
    """Trial ids promoted to the next rung: the top ``1/eta`` fraction.

    At least one trial always survives.  Ties break on trial id, so the
    promotion set is a pure function of the scores — no dict-order or
    scheduling dependence.

    Args:
        scores: Trial id -> objective value at the current rung.
        eta: Halving rate.

    Returns:
        Promoted ids, best-first.
    """
    n_promote = max(1, len(scores) // eta)
    ranked = sorted(scores, key=lambda tid: (-scores[tid], tid))
    return ranked[:n_promote]


@dataclass(frozen=True)
class Trial:
    """One sampled configuration with its pre-derived training seed."""

    trial_id: str
    params: dict
    seed: int


def sample_trials(space: HPSpace, n_trials: int, seed: int,
                  trainer: str) -> list[Trial]:
    """Sample the rung-0 trial population from per-trial seed streams.

    The root stream is ``SeedSequence([seed, "tune", crc32(trainer)])``
    — tagged so tuning never shares a stream with data generation or the
    experiment fan-out, and trainer-salted so a multi-trainer search
    explores independently per trainer.  Each trial's child splits into
    a parameter-sampling stream and a training seed; both depend only on
    ``(seed, trainer, trial index)``, never on scheduling.
    """
    root = np.random.SeedSequence(
        [int(seed), _TUNE_TAG, zlib.crc32(trainer.encode("utf-8"))]
    )
    trials = []
    for index, child in enumerate(root.spawn(n_trials)):
        param_stream, train_stream = child.spawn(2)
        params = space.sample(np.random.default_rng(param_stream))
        trials.append(Trial(
            trial_id=f"t{index:03d}",
            params=params,
            seed=int(train_stream.generate_state(1)[0]),
        ))
    return trials


# ---------------------------------------------------------------- rung core


def _reusable(
    resume: Mapping[tuple[str | None, str, int], TrialRecord] | None,
    trainer: str | None,
    trial: Trial,
    rung: int,
    budget: int | None,
) -> TrialRecord | None:
    """A previous run's record for this exact (trial, rung), if it still
    describes the same work: same trainer, params, seed and budget.  A
    search re-run with different knobs regenerates different trials, so
    stale records simply stop matching instead of poisoning the resume."""
    if resume is None:
        return None
    record = resume.get((trainer, trial.trial_id, rung))
    if record is None:
        return None
    if (
        record.params == trial.params
        and record.seed == trial.seed
        and record.budget == budget
    ):
        return record
    return None


def _evaluate_rung(
    trainer: str | None,
    trials: Sequence[Trial],
    rung: int,
    budget: int | None,
    evaluate: Callable[[list[Trial]], list[TrialOutcome]],
    buffer: ResultBuffer,
    resume: Mapping[tuple[str | None, str, int], TrialRecord] | None,
) -> dict[str, TrialResult]:
    """Score every trial at one rung, replaying resumable records.

    Cache hits skip training entirely; misses go through ``evaluate``
    (the engine fan-out, or the inline builder path) as one batch.
    Every result — replayed or fresh — is re-recorded into ``buffer`` in
    trial order, so the current run log is self-contained.
    """
    reports: dict[str, tuple] = {}
    pending: list[Trial] = []
    for trial in trials:
        record = _reusable(resume, trainer, trial, rung, budget)
        if record is not None:
            reports[trial.trial_id] = (record.fairness_report(),
                                       record.train_seconds)
        else:
            pending.append(trial)
    for trial, outcome in zip(pending, evaluate(pending) if pending else []):
        reports[trial.trial_id] = (outcome.report, outcome.train_seconds)
    results: dict[str, TrialResult] = {}
    for trial in trials:
        report, train_seconds = reports[trial.trial_id]
        buffer.add(TrialRecord.from_report(
            trainer=trainer,
            trial_id=trial.trial_id,
            rung=rung,
            budget=budget,
            params=trial.params,
            seed=trial.seed,
            train_seconds=train_seconds,
            report=report,
        ))
        results[trial.trial_id] = TrialResult(
            params=dict(trial.params),
            report=report,
            train_seconds=train_seconds,
            trial_id=trial.trial_id,
            seed=trial.seed,
            rung=rung,
            budget=budget,
        )
    return results


def _run_schedule(
    trainer: str,
    trials: list[Trial],
    budgets: Sequence[int | None],
    environments: Sequence[EnvironmentData],
    *,
    objective: str,
    blend_weight: float,
    validation_fraction: float,
    seed: int,
    eta: int | None,
    n_jobs: int,
    tracer: Tracer,
    resume: Mapping[tuple[str | None, str, int], TrialRecord] | None,
) -> SearchResult:
    """Drive a trial population through a budget ladder over the engine.

    Shared by ASHA (several budgets, promotions between them) and the
    engine-driven grid (one budget, no promotions — ``eta=None``).
    """
    fit_envs, valid_envs = split_environments(
        environments, validation_fraction, seed=seed
    )
    # Validation doubles as the workers' "test" prefix: trials are scored
    # on held-out rows, never on the true test environments.
    pack = pack_train_test(fit_envs, valid_envs)
    engine = ParallelEngine(n_jobs=n_jobs)
    buffer = ResultBuffer(tracer)
    best_results: dict[str, TrialResult] = {}
    rungs: list[RungSummary] = []
    try:
        with tracer.span(
            TUNE_SPAN,
            trainer=trainer,
            n_trials=len(trials),
            budgets=list(budgets),
            eta=eta,
            objective=objective,
            blend_weight=blend_weight,
            seed=seed,
            n_jobs=n_jobs,
        ):
            survivors = list(trials)
            for rung, budget in enumerate(budgets):
                def evaluate(pending: list[Trial],
                             budget=budget, rung=rung) -> list[TrialOutcome]:
                    tasks = [
                        TrialTask(
                            trial_id=t.trial_id,
                            rung=rung,
                            budget=budget,
                            spec=(
                                TrainerSpec.of(trainer, **t.params)
                                if budget is None
                                else TrainerSpec.of(trainer, n_epochs=budget,
                                                    **t.params)
                            ),
                            seed=t.seed,
                        )
                        for t in pending
                    ]
                    return engine.map(
                        run_trial_task,
                        tasks,
                        initializer=init_experiment_worker,
                        initargs=(pack.spec,),
                    )

                results = _evaluate_rung(
                    trainer, survivors, rung, budget, evaluate, buffer, resume
                )
                best_results.update(results)
                last_rung = rung + 1 == len(budgets)
                if eta is None or last_rung:
                    promoted: list[str] = []
                else:
                    scores = {
                        tid: r.objective_value(objective, blend_weight)
                        for tid, r in results.items()
                    }
                    promoted = select_promotions(scores, eta)
                evaluated = tuple(t.trial_id for t in survivors)
                rungs.append(RungSummary(
                    rung=rung, budget=budget,
                    evaluated=evaluated, promoted=tuple(promoted),
                ))
                tracer.event(
                    TUNE_RUNG_EVENT,
                    trainer=trainer,
                    rung=rung,
                    budget=budget,
                    evaluated=list(evaluated),
                    promoted=list(promoted),
                )
                if eta is None or last_rung:
                    break
                keep = set(promoted)
                survivors = [t for t in survivors if t.trial_id in keep]
    finally:
        pack.dispose()
    result = SearchResult(
        trials=tuple(best_results[t.trial_id] for t in trials),
        objective=objective,
        blend_weight=blend_weight,
        rungs=tuple(rungs),
        trainer=trainer,
    )
    return replace(result, best=result.ranked()[0])


# -------------------------------------------------------------- entry points


def run_asha(
    space: HPSpace,
    environments: Sequence[EnvironmentData],
    config: ASHAConfig | None = None,
    *,
    n_jobs: int = 1,
    tracer: Tracer = NULL_TRACER,
    resume: Mapping[tuple[str | None, str, int], TrialRecord] | None = None,
) -> SearchResult:
    """Successive-halving search over a trainer-bound space.

    Args:
        space: A :class:`HPSpace` bound to a registered trainer.
        environments: Training environments; each is row-split into fit
            and validation parts (the validation side scores trials).
        config: Search knobs; defaults to :class:`ASHAConfig`.
        n_jobs: Worker processes for the trial fan-out.  Any value
            yields bit-identical results — seeds belong to trials.
        tracer: Run tracer; the search runs inside one ``tune_search``
            span with per-trial ``tune_trial`` and per-rung ``tune_rung``
            events, making the log the search's durable state.
        resume: ``(trainer, trial_id, rung) -> TrialRecord`` from a previous
            run's log (:func:`~repro.tune.buffer.load_trial_records`);
            records matching regenerated trials replay instead of
            retraining.

    Returns:
        A :class:`SearchResult` whose ``best`` reached the deepest rung
        with the highest objective.

    Raises:
        SpaceError: For an unbound space — scheduling requires a
            registry name to rebuild trainers in workers.
    """
    config = config or ASHAConfig()
    if space.trainer is None:
        raise SpaceError(
            "run_asha requires a trainer-bound HPSpace; unbound spaces "
            "only support the inline run_builder_grid path"
        )
    trainer = resolve_trainer_name(space.trainer)
    trials = sample_trials(space, config.n_trials, config.seed, trainer)
    return _run_schedule(
        trainer,
        trials,
        rung_budgets(config),
        environments,
        objective=config.objective,
        blend_weight=config.blend_weight,
        validation_fraction=config.validation_fraction,
        seed=config.seed,
        eta=config.eta,
        n_jobs=n_jobs,
        tracer=tracer,
        resume=resume,
    )


def run_grid(
    space: HPSpace,
    environments: Sequence[EnvironmentData],
    *,
    objective: str = "blend",
    blend_weight: float = 0.5,
    validation_fraction: float = 0.25,
    seed: int = 0,
    n_epochs: int | None = None,
    n_jobs: int = 1,
    tracer: Tracer = NULL_TRACER,
    resume: Mapping[tuple[str | None, str, int], TrialRecord] | None = None,
) -> SearchResult:
    """Exhaustive engine-driven search over an enumerable bound space.

    The degenerate single-rung schedule: every grid point is one trial,
    nothing is promoted.  Trials still get independent training seeds
    from the tagged per-trial streams, results still flow through the
    buffer/run-log machinery, and ``n_jobs``/``resume`` work exactly as
    in :func:`run_asha`.

    Args:
        n_epochs: Epoch budget of every trial (``None`` keeps each
            config's own default).
        (others): As :func:`run_asha`.
    """
    check_objective(objective, blend_weight)
    if space.trainer is None:
        raise SpaceError(
            "run_grid requires a trainer-bound HPSpace; unbound spaces "
            "only support the inline run_builder_grid path"
        )
    trainer = resolve_trainer_name(space.trainer)
    root = np.random.SeedSequence(
        [int(seed), _TUNE_TAG, zlib.crc32(trainer.encode("utf-8"))]
    )
    points = space.grid_points()
    trials = [
        Trial(
            trial_id=f"g{index:03d}",
            params=dict(params),
            seed=int(child.spawn(2)[1].generate_state(1)[0]),
        )
        for (index, params), child in zip(enumerate(points),
                                          root.spawn(len(points)))
    ]
    return _run_schedule(
        trainer,
        trials,
        [n_epochs],
        environments,
        objective=objective,
        blend_weight=blend_weight,
        validation_fraction=validation_fraction,
        seed=seed,
        eta=None,
        n_jobs=n_jobs,
        tracer=tracer,
        resume=resume,
    )


def run_builder_grid(
    builder: Callable,
    space: HPSpace,
    environments: Sequence[EnvironmentData],
    *,
    objective: str = "blend",
    blend_weight: float = 0.5,
    validation_fraction: float = 0.25,
    seed: int = 0,
) -> SearchResult:
    """Inline grid evaluation through a trainer-builder callable.

    The compatibility path under the deprecated
    :func:`~repro.tune.search.grid_search`: a builder closure cannot
    cross a process boundary or be validated against a config dataclass,
    so every grid point is built and fitted in-process.  Results use the
    same :class:`SearchResult` surface as the engine paths.
    """
    from repro.experiments.runner import evaluate_result_on

    check_objective(objective, blend_weight)
    fit_envs, valid_envs = split_environments(
        environments, validation_fraction, seed=seed
    )
    trials = []
    for index, params in enumerate(space.grid_points()):
        started = time.perf_counter()
        result = builder(**params).fit(fit_envs)
        train_seconds = time.perf_counter() - started
        report = evaluate_result_on(result, valid_envs)
        trials.append(TrialResult(
            params=dict(params),
            report=report,
            train_seconds=train_seconds,
            trial_id=f"g{index:03d}",
            seed=None,
            rung=0,
            budget=None,
        ))
    rungs = (RungSummary(
        rung=0, budget=None,
        evaluated=tuple(t.trial_id for t in trials),
        promoted=(),
    ),)
    result = SearchResult(
        trials=tuple(trials),
        objective=objective,
        blend_weight=blend_weight,
        rungs=rungs,
        trainer=space.trainer,
    )
    return replace(result, best=result.ranked()[0])
