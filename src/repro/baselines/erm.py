"""ERM baseline: pooled empirical risk minimisation.

The standard industry approach the paper critiques: minimise the average
loss over the aggregated data, ignoring environment structure entirely.
Implemented as full-batch gradient descent on the pooled BCE so that the
only difference from the IRM trainers is the objective, not the optimiser.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import EnvironmentData
from repro.models.logistic import LogisticModel
from repro.timing import StepTimer
from repro.train.base import (
    BaseTrainConfig,
    EpochCallback,
    Trainer,
    TrainingHistory,
    stack_environments,
)

__all__ = ["ERMTrainer"]


class ERMTrainer(Trainer):
    """Pooled-loss gradient descent (the paper's ERM baseline)."""

    name = "ERM"

    def __init__(self, config: BaseTrainConfig | None = None):
        super().__init__(config or BaseTrainConfig())

    def _run(
        self,
        environments: list[EnvironmentData],
        model: LogisticModel,
        theta: np.ndarray,
        history: TrainingHistory,
        callback: EpochCallback | None,
        timer: StepTimer,
    ) -> np.ndarray:
        cfg = self.config
        with timer.step("loading_data"):
            if cfg.batch_size is None:
                features, labels = stack_environments(environments)

        for epoch in range(cfg.n_epochs):
            timer.begin_epoch()
            if cfg.batch_size is not None:
                features, labels = stack_environments(
                    self._epoch_environments(environments)
                )
            with timer.step("inner_optimization"):
                loss, grad = model.loss_and_gradient(theta, features, labels)
            with timer.step("backward_propagation"):
                theta = self._optimizer.step(theta, grad)
            timer.end_epoch()
            env_losses = {
                env.name: model.loss(theta, env.features, env.labels)
                for env in environments
            }
            extra = (
                {"grad_norm": float(np.linalg.norm(grad))}
                if self._tracer.enabled else {}
            )
            self._record(history, loss, env_losses, epoch, theta, callback,
                         **extra)
        return theta
