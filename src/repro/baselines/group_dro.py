"""GroupDRO baseline (Sagawa et al., 2019).

Distributionally robust optimisation over groups: maintain a probability
vector ``q`` over environments, updated multiplicatively toward the
worst-loss environments (exponentiated gradient), and descend the
``q``-weighted loss.  This directly optimises the worst-group risk the
paper's minimax-fairness metrics measure — the strongest "fairness-first"
baseline in Table I.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import EnvironmentData
from repro.models.logistic import LogisticModel
from repro.timing import StepTimer
from repro.train.base import (
    BaseTrainConfig,
    EpochCallback,
    Trainer,
    TrainingHistory,
)

__all__ = ["GroupDROConfig", "GroupDROTrainer"]


@dataclass(frozen=True)
class GroupDROConfig(BaseTrainConfig):
    """GroupDRO hyper-parameters.

    Attributes:
        group_lr: Step size η of the exponentiated-gradient update on the
            group weights ``q_e ∝ q_e · exp(η · loss_e)``.
    """

    group_lr: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.group_lr <= 0:
            raise ValueError("group_lr must be positive")


class GroupDROTrainer(Trainer):
    """Worst-group risk minimisation via exponentiated group weights."""

    name = "Group DRO"

    def __init__(self, config: GroupDROConfig | None = None):
        config = config or GroupDROConfig()
        super().__init__(config)
        self.config: GroupDROConfig = config
        #: Final group weights after fit(), index-aligned with environments.
        self.group_weights_: np.ndarray | None = None

    def _run(
        self,
        environments: list[EnvironmentData],
        model: LogisticModel,
        theta: np.ndarray,
        history: TrainingHistory,
        callback: EpochCallback | None,
        timer: StepTimer,
    ) -> np.ndarray:
        cfg = self.config
        n_envs = len(environments)
        q = np.full(n_envs, 1.0 / n_envs)

        for epoch in range(cfg.n_epochs):
            timer.begin_epoch()
            epoch_envs = self._epoch_environments(environments)
            losses = np.zeros(n_envs)
            grads: list[np.ndarray] = []
            env_losses: dict[str, float] = {}
            with timer.step("inner_optimization"):
                for e, env in enumerate(epoch_envs):
                    loss_e, grad_e = model.loss_and_gradient(
                        theta, env.features, env.labels
                    )
                    losses[e] = loss_e
                    grads.append(grad_e)
                    env_losses[env.name] = loss_e
            with timer.step("backward_propagation"):
                # Exponentiated-gradient ascent on q (shift for stability).
                q = q * np.exp(cfg.group_lr * (losses - losses.max()))
                q = q / q.sum()
                grad = np.zeros_like(theta)
                for e in range(n_envs):
                    grad += q[e] * grads[e]
                theta = self._optimizer.step(theta, grad)
            timer.end_epoch()
            objective = float(q @ losses)
            extra = {}
            if self._tracer.enabled:
                extra = {
                    "grad_norm": float(np.linalg.norm(grad)),
                    "group_weights": {
                        env.name: float(q[e])
                        for e, env in enumerate(environments)
                    },
                    "worst_group_loss": float(losses.max()),
                }
            self._record(history, objective, env_losses, epoch, theta,
                         callback, **extra)
        self.group_weights_ = q
        return theta
