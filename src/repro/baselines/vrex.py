"""V-REx baseline (Krueger et al., 2021).

Risk extrapolation: minimise the mean of the per-environment risks plus a
penalty on their variance,

    J(θ) = mean_e R_e(θ) + λ_v · Var_e(R_e(θ)),

which pulls the environments' risks together — the variance-based fairness
idea the paper contrasts with IRM's bi-level formulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import EnvironmentData
from repro.models.logistic import LogisticModel
from repro.timing import StepTimer
from repro.train.base import (
    BaseTrainConfig,
    EpochCallback,
    Trainer,
    TrainingHistory,
)

__all__ = ["VRExConfig", "VRExTrainer"]


@dataclass(frozen=True)
class VRExConfig(BaseTrainConfig):
    """V-REx hyper-parameters.

    Attributes:
        variance_weight: Penalty λ_v on the variance of environment risks.
    """

    variance_weight: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.variance_weight < 0:
            raise ValueError("variance_weight must be non-negative")


class VRExTrainer(Trainer):
    """Mean-plus-variance-of-risks minimisation."""

    name = "V-REx"

    def __init__(self, config: VRExConfig | None = None):
        config = config or VRExConfig()
        super().__init__(config)
        self.config: VRExConfig = config

    def _run(
        self,
        environments: list[EnvironmentData],
        model: LogisticModel,
        theta: np.ndarray,
        history: TrainingHistory,
        callback: EpochCallback | None,
        timer: StepTimer,
    ) -> np.ndarray:
        cfg = self.config
        n_envs = len(environments)

        for epoch in range(cfg.n_epochs):
            timer.begin_epoch()
            epoch_envs = self._epoch_environments(environments)
            losses = np.zeros(n_envs)
            grads: list[np.ndarray] = []
            env_losses: dict[str, float] = {}
            with timer.step("inner_optimization"):
                for e, env in enumerate(epoch_envs):
                    loss_e, grad_e = model.loss_and_gradient(
                        theta, env.features, env.labels
                    )
                    losses[e] = loss_e
                    grads.append(grad_e)
                    env_losses[env.name] = loss_e
            with timer.step("backward_propagation"):
                mean_loss = losses.mean()
                # d/dθ [mean + λ_v Var] = Σ_e [1/M + 2λ_v (L_e - mean)/M] ∇L_e
                coeffs = (
                    1.0 / n_envs
                    + 2.0 * cfg.variance_weight * (losses - mean_loss) / n_envs
                )
                grad = np.zeros_like(theta)
                for e in range(n_envs):
                    grad += coeffs[e] * grads[e]
                theta = self._optimizer.step(theta, grad)
            timer.end_epoch()
            objective = float(mean_loss + cfg.variance_weight * losses.var())
            extra = {}
            if self._tracer.enabled:
                extra = {
                    "penalty": float(cfg.variance_weight * losses.var()),
                    "grad_norm": float(np.linalg.norm(grad)),
                }
            self._record(history, objective, env_losses, epoch, theta,
                         callback, **extra)
        return theta
