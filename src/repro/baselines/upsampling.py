"""Up-sampling baseline: rebalance underrepresented environments.

"This method adopts an up-sampling strategy in provinces with fewer samples.
Note that we could adjust the rate of negative samples in loss function
respectively."  Instead of physically duplicating rows we use the exact
equivalent: weight each environment's mean loss equally (raising the
effective sampling rate of small provinces), optionally combined with a
positive-class weight for the within-environment imbalance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import EnvironmentData
from repro.models.logistic import LogisticModel
from repro.timing import StepTimer
from repro.train.base import (
    BaseTrainConfig,
    EpochCallback,
    Trainer,
    TrainingHistory,
)

__all__ = ["UpSamplingConfig", "UpSamplingTrainer"]


@dataclass(frozen=True)
class UpSamplingConfig(BaseTrainConfig):
    """Up-sampling hyper-parameters.

    Attributes:
        power: Exponent on environment size when computing weights; 0 gives
            fully equalised environments (each province counts the same),
            1 recovers plain ERM.  Intermediate values partially rebalance.
        positive_weight: Multiplier on positive-sample losses within each
            environment (the "rate of negative samples" adjustment); 1.0
            disables class re-weighting.
    """

    power: float = 0.5
    positive_weight: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.power <= 1.0:
            raise ValueError("power must be in [0, 1]")
        if self.positive_weight <= 0:
            raise ValueError("positive_weight must be positive")


class UpSamplingTrainer(Trainer):
    """Environment-rebalanced (and optionally class-rebalanced) ERM."""

    name = "Up Sampling"

    def __init__(self, config: UpSamplingConfig | None = None):
        config = config or UpSamplingConfig()
        super().__init__(config)
        self.config: UpSamplingConfig = config

    def _run(
        self,
        environments: list[EnvironmentData],
        model: LogisticModel,
        theta: np.ndarray,
        history: TrainingHistory,
        callback: EpochCallback | None,
        timer: StepTimer,
    ) -> np.ndarray:
        cfg = self.config
        sizes = np.array([env.n_samples for env in environments], dtype=np.float64)
        env_weights = sizes**cfg.power
        env_weights /= env_weights.sum()

        for epoch in range(cfg.n_epochs):
            timer.begin_epoch()
            epoch_envs = self._epoch_environments(environments)
            objective = 0.0
            grad = np.zeros_like(theta)
            env_losses: dict[str, float] = {}
            with timer.step("inner_optimization"):
                for weight, env in zip(env_weights, epoch_envs):
                    loss_e, grad_e = self._weighted_loss_and_gradient(
                        model, theta, env
                    )
                    env_losses[env.name] = loss_e
                    objective += weight * loss_e
                    grad += weight * grad_e
            with timer.step("backward_propagation"):
                theta = self._optimizer.step(theta, grad)
            timer.end_epoch()
            extra = (
                {"grad_norm": float(np.linalg.norm(grad))}
                if self._tracer.enabled else {}
            )
            self._record(history, objective, env_losses, epoch, theta,
                         callback, **extra)
        return theta

    def _weighted_loss_and_gradient(
        self, model: LogisticModel, theta: np.ndarray, env: EnvironmentData
    ) -> tuple[float, np.ndarray]:
        """Per-environment loss/gradient with optional positive-class weight."""
        if self.config.positive_weight == 1.0:
            return model.loss_and_gradient(theta, env.features, env.labels)
        labels = env.labels
        prob = model.predict_proba(theta, env.features)
        prob = np.clip(prob, 1e-12, 1 - 1e-12)
        sample_weights = np.where(labels == 1.0, self.config.positive_weight, 1.0)
        sample_weights = sample_weights / sample_weights.mean()
        per_sample = -(labels * np.log(prob) + (1 - labels) * np.log(1 - prob))
        loss = float(np.mean(sample_weights * per_sample))
        residual = sample_weights * (prob - labels) / labels.size
        grad = model._rmatvec(env.features, residual)
        if model.l2:
            loss += 0.5 * model.l2 * float(theta @ theta)
            grad = grad + model.l2 * theta
        return loss, grad
