"""Baseline trainers from the paper's comparison (Section IV-A1)."""

from repro.baselines.erm import ERMTrainer
from repro.baselines.finetune import (
    FineTuneConfig,
    FineTunedTrainResult,
    FineTuneTrainer,
)
from repro.baselines.group_dro import GroupDROConfig, GroupDROTrainer
from repro.baselines.irmv1 import IRMv1Config, IRMv1Trainer
from repro.baselines.upsampling import UpSamplingConfig, UpSamplingTrainer
from repro.baselines.vrex import VRExConfig, VRExTrainer

__all__ = [
    "ERMTrainer",
    "FineTuneConfig",
    "FineTunedTrainResult",
    "FineTuneTrainer",
    "GroupDROConfig",
    "GroupDROTrainer",
    "IRMv1Config",
    "IRMv1Trainer",
    "UpSamplingConfig",
    "UpSamplingTrainer",
    "VRExConfig",
    "VRExTrainer",
]
