"""IRMv1 (Arjovsky et al., 2019): the gradient-penalty approximation of IRM.

The paper motivates meta-IRM by IRMv1's shortcomings ("IRMv1 is just an
approximation for IRM and fails to capture invariant correlations in many
cases"), so a faithful reproduction should include it for contrast.  IRMv1
fixes the classifier to a scalar dummy ``w = 1`` on top of the logits and
penalises, per environment, the squared gradient of the environment risk
with respect to that dummy:

    J(θ) = Σ_e R^e(θ) + λ · Σ_e ( d/dw R^e(w·θ) |_{w=1} )²

For the LR head everything is closed-form.  With logits ``z = Xθ`` and
probabilities ``p = σ(z)``:

    D_e      = mean[(p − y) · z]                       (the dummy gradient)
    dD_e/dθ  = Xᵀ[ (p − y) + p(1 − p)·z ] / n
    ∇penalty = 2 · D_e · dD_e/dθ
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import EnvironmentData
from repro.models.logistic import LogisticModel
from repro.timing import StepTimer
from repro.train.base import (
    BaseTrainConfig,
    EpochCallback,
    Trainer,
    TrainingHistory,
)

__all__ = ["IRMv1Config", "IRMv1Trainer", "dummy_gradient_and_penalty_grad"]


@dataclass(frozen=True)
class IRMv1Config(BaseTrainConfig):
    """IRMv1 hyper-parameters.

    Attributes:
        penalty_weight: λ on the squared dummy-classifier gradient.  The
            original paper anneals this to very large values; a moderate
            default keeps the optimisation stable with plain GD.
    """

    penalty_weight: float = 10.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.penalty_weight < 0:
            raise ValueError("penalty_weight must be non-negative")


def dummy_gradient_and_penalty_grad(
    model: LogisticModel,
    theta: np.ndarray,
    env: EnvironmentData,
) -> tuple[float, np.ndarray]:
    """Per-environment dummy gradient D_e and ∇_θ(D_e²).

    Args:
        model: LR model (provides dimensions; l2 is not part of the penalty).
        theta: Current parameters.
        env: Environment whose invariance penalty is computed.

    Returns:
        Tuple ``(D_e, grad_of_D_e_squared)``.
    """
    labels = np.asarray(env.labels, dtype=np.float64).ravel()
    logits = model.logits(theta, env.features)
    prob = 1.0 / (1.0 + np.exp(-np.clip(logits, -500, 500)))
    residual = prob - labels
    n = labels.size
    dummy_grad = float(residual @ logits) / n
    weights = prob * (1.0 - prob)
    inner = residual + weights * logits
    d_dummy_dtheta = model._rmatvec(env.features, inner) / n
    return dummy_grad, 2.0 * dummy_grad * d_dummy_dtheta


class IRMv1Trainer(Trainer):
    """Penalty-based IRM on the LR head (for contrast with meta-IRM)."""

    name = "IRMv1"

    def __init__(self, config: IRMv1Config | None = None):
        config = config or IRMv1Config()
        super().__init__(config)
        self.config: IRMv1Config = config

    def _run(
        self,
        environments: list[EnvironmentData],
        model: LogisticModel,
        theta: np.ndarray,
        history: TrainingHistory,
        callback: EpochCallback | None,
        timer: StepTimer,
    ) -> np.ndarray:
        cfg = self.config
        for epoch in range(cfg.n_epochs):
            timer.begin_epoch()
            epoch_envs = self._epoch_environments(environments)
            objective = 0.0
            penalty = 0.0
            grad = np.zeros_like(theta)
            env_losses: dict[str, float] = {}
            with timer.step("inner_optimization"):
                for env in epoch_envs:
                    loss_e, grad_e = model.loss_and_gradient(
                        theta, env.features, env.labels
                    )
                    dummy, penalty_grad = dummy_gradient_and_penalty_grad(
                        model, theta, env
                    )
                    env_losses[env.name] = loss_e
                    penalty += cfg.penalty_weight * dummy**2
                    objective += loss_e + cfg.penalty_weight * dummy**2
                    grad += grad_e + cfg.penalty_weight * penalty_grad
            with timer.step("backward_propagation"):
                theta = self._optimizer.step(theta, grad / len(environments))
            timer.end_epoch()
            extra = (
                {
                    "penalty": float(penalty),
                    "grad_norm": float(
                        np.linalg.norm(grad / len(environments))
                    ),
                }
                if self._tracer.enabled else {}
            )
            self._record(history, objective, env_losses, epoch, theta,
                         callback, **extra)
        return theta
