"""ERM + fine-tuning baseline.

"In order to fit the differences between various environments, the ERM model
is fine-tuned for each province respectively before the evaluation."  We
train a pooled ERM model, then continue training a copy of its parameters on
each environment alone for a few epochs.  Evaluation uses the environment's
own fine-tuned parameters when the environment was seen in training, falling
back to the base parameters otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.erm import ERMTrainer
from repro.data.dataset import EnvironmentData
from repro.models.logistic import LogisticModel
from repro.obs.tracer import Tracer
from repro.timing import StepTimer
from repro.train.base import (
    BaseTrainConfig,
    EpochCallback,
    Trainer,
    TrainingHistory,
    TrainResult,
)

__all__ = ["FineTuneConfig", "FineTunedTrainResult", "FineTuneTrainer"]


@dataclass(frozen=True)
class FineTuneConfig(BaseTrainConfig):
    """ERM + per-environment fine-tuning hyper-parameters.

    Attributes:
        finetune_epochs: Gradient steps taken per environment after the
            base ERM fit.
        finetune_lr: Step size of the fine-tuning phase (usually smaller
            than the base learning rate).
    """

    finetune_epochs: int = 15
    finetune_lr: float = 0.3

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.finetune_epochs < 1:
            raise ValueError("finetune_epochs must be >= 1")
        if self.finetune_lr <= 0:
            raise ValueError("finetune_lr must be positive")


@dataclass(frozen=True)
class FineTunedTrainResult(TrainResult):
    """Train result carrying one parameter vector per seen environment.

    Satisfies the unified :class:`~repro.train.base.TrainResult` surface:
    downstream scoring goes through ``predict_proba_grouped`` /
    ``predict_proba_env`` with no type inspection.
    """

    env_thetas: dict[str, np.ndarray] = None  # type: ignore[assignment]

    @property
    def is_per_environment(self) -> bool:
        """True when at least one environment has fine-tuned parameters."""
        return bool(self.env_thetas)

    def theta_for_environment(self, name: str) -> np.ndarray:
        """Fine-tuned parameters for a seen environment, else the base."""
        if self.env_thetas and name in self.env_thetas:
            return self.env_thetas[name]
        return self.theta


class FineTuneTrainer(Trainer):
    """Pooled ERM followed by per-environment fine-tuning."""

    name = "ERM + fine-tuning"

    def __init__(self, config: FineTuneConfig | None = None):
        config = config or FineTuneConfig()
        super().__init__(config)
        self.config: FineTuneConfig = config

    def fit(
        self,
        environments,
        callback: EpochCallback | None = None,
        timer: StepTimer | None = None,
        tracer: Tracer | None = None,
    ) -> FineTunedTrainResult:
        # The base phase runs under this trainer's name so that a traced
        # run attributes its epochs/steps to "ERM + fine-tuning", not ERM.
        base_trainer = ERMTrainer(self.config)
        base_trainer.name = self.name
        base = base_trainer.fit(environments, callback=callback,
                                timer=timer, tracer=tracer)
        cfg = self.config
        tracer = base_trainer._tracer
        env_thetas: dict[str, np.ndarray] = {}
        with tracer.span("finetune", trainer=self.name):
            for env in environments:
                theta = base.theta.copy()
                for _ in range(cfg.finetune_epochs):
                    grad = base.model.gradient(theta, env.features, env.labels)
                    theta = theta - cfg.finetune_lr * grad
                env_thetas[env.name] = theta
                if tracer.enabled:
                    tracer.event(
                        "finetune_env",
                        trainer=self.name,
                        environment=env.name,
                        final_loss=float(
                            base.model.loss(theta, env.features, env.labels)
                        ),
                    )
        return FineTunedTrainResult(
            trainer_name=self.name,
            theta=base.theta,
            model=base.model,
            history=base.history,
            timer=base.timer,
            env_thetas=env_thetas,
        )

    def _run(
        self,
        environments: list[EnvironmentData],
        model: LogisticModel,
        theta: np.ndarray,
        history: TrainingHistory,
        callback: EpochCallback | None,
        timer: StepTimer,
    ) -> np.ndarray:  # pragma: no cover - fit() is overridden
        raise NotImplementedError("FineTuneTrainer overrides fit() directly")
