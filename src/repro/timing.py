"""Step-level wall-clock instrumentation for Table III / Fig 7.

The paper profiles five operation steps of each training algorithm (loading
data, transforming the format, inner optimization, calculating the
meta-losses, backward propagation) and reports per-step and whole-epoch
times.  :class:`StepTimer` is threaded through every trainer so the same
steps can be measured on our substrate.
"""

from __future__ import annotations

import statistics
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["StepTimer", "StepStats", "STEP_NAMES", "Measurement", "measure"]

#: Canonical step names, in Table III row order.
STEP_NAMES = (
    "loading_data",
    "transforming_format",
    "inner_optimization",
    "calculating_meta_losses",
    "backward_propagation",
)


@dataclass
class StepStats:
    """Accumulated wall time and invocation count of one step."""

    total_seconds: float = 0.0
    count: int = 0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0


@dataclass
class StepTimer:
    """Accumulates per-step wall-clock time across a training run.

    Usage inside a trainer::

        with timer.step("inner_optimization"):
            ...

    A disabled timer (``enabled=False``) keeps the same interface with
    near-zero overhead, so trainers always call it unconditionally.

    The optional ``on_step``/``on_epoch`` hooks mirror measurements into
    an external sink without the timer knowing about it — this is how a
    :class:`~repro.obs.tracer.Tracer` turns timer steps into run-log
    spans (``tracer.attach_timer(timer)``).
    """

    enabled: bool = True
    stats: dict[str, StepStats] = field(default_factory=dict)
    _epoch_start: float | None = None
    epoch_seconds: list[float] = field(default_factory=list)
    #: Called with ``(step_name, elapsed_seconds)`` after every step.
    on_step: Callable[[str, float], None] | None = None
    #: Called with ``(elapsed_seconds)`` after every completed epoch.
    on_epoch: Callable[[float], None] | None = None

    @contextmanager
    def step(self, name: str):
        """Time one occurrence of a named step."""
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            entry = self.stats.setdefault(name, StepStats())
            entry.total_seconds += elapsed
            entry.count += 1
            if self.on_step is not None:
                self.on_step(name, elapsed)

    def begin_epoch(self) -> None:
        """Mark the start of an epoch (for whole-epoch timing)."""
        if self.enabled:
            self._epoch_start = time.perf_counter()

    def end_epoch(self) -> None:
        """Mark the end of an epoch."""
        if self.enabled and self._epoch_start is not None:
            elapsed = time.perf_counter() - self._epoch_start
            self.epoch_seconds.append(elapsed)
            self._epoch_start = None
            if self.on_epoch is not None:
                self.on_epoch(elapsed)

    @contextmanager
    def epoch(self):
        """Context-manager form of :meth:`begin_epoch`/:meth:`end_epoch`."""
        self.begin_epoch()
        try:
            yield
        finally:
            self.end_epoch()

    @property
    def n_epochs(self) -> int:
        """Number of completed (begin/end-bracketed) epochs."""
        return len(self.epoch_seconds)

    @property
    def mean_epoch_seconds(self) -> float:
        if not self.epoch_seconds:
            # Epoch bookkeeping was never entered (a trainer timed steps
            # but no epochs): estimate one epoch as the sum of per-step
            # means instead of silently reporting zero.
            return sum(s.mean_seconds for s in self.stats.values())
        return sum(self.epoch_seconds) / len(self.epoch_seconds)

    def mean_step_seconds(self, name: str) -> float:
        """Mean seconds per invocation of a step (0 if never hit)."""
        entry = self.stats.get(name)
        return entry.mean_seconds if entry else 0.0

    def total_step_seconds(self, name: str) -> float:
        """Total seconds spent in a step."""
        entry = self.stats.get(name)
        return entry.total_seconds if entry else 0.0

    def proportions(self) -> dict[str, float]:
        """Fraction of total instrumented time per step (Fig 7 data)."""
        total = sum(s.total_seconds for s in self.stats.values())
        if total == 0:
            return {name: 0.0 for name in self.stats}
        return {
            name: entry.total_seconds / total for name, entry in self.stats.items()
        }

    def as_table_row(self) -> dict[str, float]:
        """Mean per-step seconds keyed by the canonical Table III names."""
        return {name: self.mean_step_seconds(name) for name in STEP_NAMES}

    def snapshot(self) -> dict:
        """JSON-compatible timer state, emitted even without epochs.

        ``epochs.estimated`` flags the no-epoch fallback of
        :attr:`mean_epoch_seconds` so downstream consumers can tell a
        measured whole-epoch time from a per-step reconstruction.
        """
        return {
            "steps": {
                name: {
                    "total_seconds": entry.total_seconds,
                    "count": entry.count,
                    "mean_seconds": entry.mean_seconds,
                }
                for name, entry in self.stats.items()
            },
            "epochs": {
                "count": self.n_epochs,
                "mean_seconds": self.mean_epoch_seconds,
                "estimated": not self.epoch_seconds and bool(self.stats),
            },
        }


@dataclass(frozen=True)
class Measurement:
    """Repeated wall-clock timings of one callable.

    Attributes:
        seconds: Per-repeat wall times, in run order (warmup excluded).
    """

    seconds: tuple[float, ...]

    @property
    def median_seconds(self) -> float:
        """Median of the repeats — robust to scheduler noise."""
        return statistics.median(self.seconds)

    @property
    def best_seconds(self) -> float:
        """Fastest repeat — the least-perturbed observation."""
        return min(self.seconds)

    @property
    def repeats(self) -> int:
        return len(self.seconds)


def measure(fn: Callable[[], object], repeats: int = 5,
            warmup: int = 1) -> Measurement:
    """Time ``fn()`` ``repeats`` times after ``warmup`` discarded calls.

    The perf microbenchmarks report :attr:`Measurement.median_seconds`
    (median-of-k) so one preempted run cannot skew a tracked number.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(warmup):
        fn()
    seconds = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        seconds.append(time.perf_counter() - start)
    return Measurement(seconds=tuple(seconds))
