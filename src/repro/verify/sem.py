"""Closed-form linear-SEM test environments for invariance verification.

The loan generator (:mod:`repro.data.generator`) is realistic but its ground
truth is only qualitative.  Verifying *invariance itself* — does a trainer
put its weight on the causal coefficients and keep it off the shortcut? —
needs a bed where both the invariant solution and the ERM shortcut solution
are known **in closed form**.  This module provides the standard two-block
structural equation model used by the IRM unit-testing literature ("A call
for better unit testing for invariant risk minimisation"; "What Is Missing
in IRM Training and Evaluation?"):

Per environment ``e`` with spurious strength ``β_e``::

    x_c ~ N(0, I_dc)                        causal block
    y   ~ Bernoulli( σ(w_c · x_c) )         invariant structural equation
    x_s = β_e (2y − 1) 1_ds + σ_s ε         anti-causal spurious block
    x_n ~ N(0, I_dn)                        pure noise block

Closed-form facts the scorecard and tests lean on:

* **Invariant predictor.** ``P(y=1 | x_c) = σ(w_c · x_c)`` holds in every
  environment, so the invariant logistic solution is exactly
  ``θ* = (w_c, 0, 0)``.
* **ERM shortcut.**  Within environment ``e``, Bayes' rule on the Gaussian
  spurious likelihoods gives
  ``log-odds(y | x_c, x_s) = w_c·x_c + (2 β_e / σ_s²) Σ_j x_sj``;
  the environment-optimal classifier loads each spurious column with the
  coefficient :func:`SEMConfig.shortcut_coefficient` — large whenever
  ``β_e`` is, which is exactly the shortcut pooled ERM converges toward
  when the training polarities share a sign.
* **OOD failure mode.**  An out-of-distribution environment with flipped
  polarity (``β_ood < 0``) punishes any positive spurious weight, so the
  IID-vs-OOD gap measures shortcut reliance directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import EnvironmentData
from repro.numerics import sigmoid

__all__ = ["SEMConfig", "SEMBed", "make_sem_bed"]

#: Default causal coefficients: mixed signs and magnitudes so cosine
#: alignment with them is a non-trivial recovery target.
_DEFAULT_W_CAUSAL = (1.2, -0.8, 0.6, -1.0, 0.9)


@dataclass(frozen=True)
class SEMConfig:
    """Knobs of the closed-form SEM bed.

    Attributes:
        n_per_env: Rows drawn per training environment.
        d_causal: Causal block width; must match ``len(w_causal)`` when the
            latter is given.
        d_spurious: Spurious block width.
        d_noise: Pure-noise block width.
        w_causal: Invariant structural coefficients; defaults to a fixed
            mixed-sign vector (padded/truncated to ``d_causal``).
        train_strengths: Spurious strength ``β_e`` per training environment.
            The defaults are majority-positive with one weakly flipped
            environment: the pooled shortcut stays attractive to ERM
            (mean β > 0) while the cross-environment disagreement gives
            the IRM family a detectable invariance violation.
        ood_strength: ``β`` of the held-out environment (polarity flipped).
        spurious_noise: Std ``σ_s`` of the spurious measurement noise.
        seed: RNG seed; the bed is fully deterministic given it.
    """

    n_per_env: int = 2_000
    d_causal: int = 5
    d_spurious: int = 3
    d_noise: int = 2
    w_causal: tuple[float, ...] | None = None
    train_strengths: tuple[float, ...] = (1.2, 0.8, -0.4)
    ood_strength: float = -1.0
    spurious_noise: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_per_env < 10:
            raise ValueError("n_per_env must be >= 10")
        if min(self.d_causal, self.d_spurious) < 1:
            raise ValueError("need at least one causal and one spurious dim")
        if self.d_noise < 0:
            raise ValueError("d_noise must be non-negative")
        if len(self.train_strengths) < 2:
            raise ValueError("need >= 2 training environments for IRM")
        if self.spurious_noise <= 0:
            raise ValueError("spurious_noise must be positive")
        if self.w_causal is not None and len(self.w_causal) != self.d_causal:
            raise ValueError(
                f"w_causal has {len(self.w_causal)} entries, "
                f"d_causal is {self.d_causal}"
            )

    @classmethod
    def smoke(cls, seed: int = 0) -> "SEMConfig":
        """Tiny bed for CI: same strengths, smaller blocks and row counts."""
        return cls(n_per_env=600, d_causal=3, d_spurious=2, d_noise=1,
                   seed=seed)

    @property
    def n_features(self) -> int:
        return self.d_causal + self.d_spurious + self.d_noise

    def causal_coefficients(self) -> np.ndarray:
        """The invariant structural coefficients ``w_c``."""
        if self.w_causal is not None:
            return np.asarray(self.w_causal, dtype=np.float64)
        base = np.array(_DEFAULT_W_CAUSAL, dtype=np.float64)
        if self.d_causal <= base.size:
            return base[: self.d_causal].copy()
        reps = int(np.ceil(self.d_causal / base.size))
        return np.tile(base, reps)[: self.d_causal]

    def shortcut_coefficient(self, strength: float) -> float:
        """Environment-optimal spurious weight ``2 β_e / σ_s²`` (Bayes)."""
        return 2.0 * strength / self.spurious_noise**2

    def invariant_theta(self) -> np.ndarray:
        """The closed-form invariant solution ``(w_c, 0, 0)``."""
        theta = np.zeros(self.n_features)
        theta[: self.d_causal] = self.causal_coefficients()
        return theta


@dataclass(frozen=True)
class SEMBed:
    """A generated SEM problem: environments plus its ground truth.

    Attributes:
        config: The generating configuration.
        train_environments: One :class:`EnvironmentData` per training
            strength, named ``env_0 .. env_{k-1}``.
        ood_environment: The polarity-flipped held-out environment.
        iid_environment: A fresh draw from the *first training* strength
            (for the IID side of the OOD-vs-IID gap).
        causal_idx: Column indices of the causal block.
        spurious_idx: Column indices of the spurious block.
        noise_idx: Column indices of the noise block.
    """

    config: SEMConfig
    train_environments: list[EnvironmentData]
    ood_environment: EnvironmentData
    iid_environment: EnvironmentData
    causal_idx: np.ndarray = field(repr=False)
    spurious_idx: np.ndarray = field(repr=False)
    noise_idx: np.ndarray = field(repr=False)

    @property
    def w_causal(self) -> np.ndarray:
        return self.config.causal_coefficients()

    @property
    def invariant_theta(self) -> np.ndarray:
        return self.config.invariant_theta()


def _sample_environment(
    rng: np.random.Generator, config: SEMConfig, strength: float, name: str
) -> EnvironmentData:
    """Draw one environment from the SEM with spurious strength ``β_e``."""
    n = config.n_per_env
    w_c = config.causal_coefficients()
    x_causal = rng.standard_normal((n, config.d_causal))
    y = (rng.random(n) < sigmoid(x_causal @ w_c)).astype(np.float64)
    x_spurious = (
        strength * (2.0 * y[:, None] - 1.0)
        + config.spurious_noise * rng.standard_normal((n, config.d_spurious))
    )
    blocks = [x_causal, x_spurious]
    if config.d_noise:
        blocks.append(rng.standard_normal((n, config.d_noise)))
    features = np.concatenate(blocks, axis=1)
    # Guarantee both classes so rank metrics stay defined even at smoke size.
    if y.sum() == 0.0:
        y[0] = 1.0
    elif y.sum() == n:
        y[0] = 0.0
    return EnvironmentData(name, features, y)


def make_sem_bed(config: SEMConfig | None = None) -> SEMBed:
    """Generate the full verification bed: training, IID and OOD splits."""
    config = config or SEMConfig()
    rng = np.random.default_rng(
        np.random.SeedSequence([config.seed, 0x53454D])
    )
    train = [
        _sample_environment(rng, config, strength, f"env_{i}")
        for i, strength in enumerate(config.train_strengths)
    ]
    iid = _sample_environment(
        rng, config, config.train_strengths[0], "iid_holdout"
    )
    ood = _sample_environment(rng, config, config.ood_strength, "ood_holdout")
    d_c, d_s = config.d_causal, config.d_spurious
    return SEMBed(
        config=config,
        train_environments=train,
        ood_environment=ood,
        iid_environment=iid,
        causal_idx=np.arange(d_c),
        spurious_idx=np.arange(d_c, d_c + d_s),
        noise_idx=np.arange(d_c + d_s, config.n_features),
    )
