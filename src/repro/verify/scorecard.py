"""The invariance scorecard: every trainer scored on the closed-form bed.

Analogous to :mod:`repro.perfbench` for performance, this module keeps the
repo's *correctness* story honest.  ``run_verification`` fits every trainer
in :func:`repro.train.registry.available_trainers` on the SEM bed of
:mod:`repro.verify.sem` and scores three things end metrics cannot see:

* **Coefficient recovery** — cosine alignment of the learned causal block
  with the true ``w_c`` and the L1 mass left on the spurious block.
* **Penalty monotonicity** — for trainers with an invariance-penalty knob
  (see :func:`repro.train.registry.penalty_parameter`), the spurious mass
  must not grow as the penalty does.  IRM-family methods silently regress
  to ERM under mis-tuning; this is the regression tripwire.
* **OOD-vs-IID gap** — AUC on a polarity-flipped environment versus a
  fresh in-distribution draw.  Shortcut reliance shows up as a large gap.

``write_verify_json`` persists the machine-readable scorecard as
``VERIFY_invariance.json`` (the correctness twin of ``BENCH_gbdt.json``);
``python -m repro verify`` is the CLI entry point and exits non-zero when
any check fails.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from dataclasses import dataclass, field

import numpy as np

from repro.metrics.auc import auc_score
from repro.metrics.invariance import coefficient_recovery
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.train.registry import (
    available_trainers,
    make_trainer,
    penalty_parameter,
)
from repro.verify.sem import SEMBed, SEMConfig, make_sem_bed

__all__ = [
    "VerifyConfig",
    "run_verification",
    "summarize_verification",
    "write_verify_json",
]

#: Format version of VERIFY_invariance.json.
VERIFY_FORMAT = 1

#: Per-trainer config overrides that keep every method stable and give the
#: penalised methods a fair shot on the SEM bed.  The outer loop is long
#: enough for full convergence of the plain risk minimisers; learning rates
#: are reduced where the default (tuned for the GBDT+LR loan pipeline)
#: diverges under a strong penalty on the small dense problem.
_TRAINER_PROFILES: dict[str, dict] = {
    "ERM": {},
    "ERM + fine-tuning": {},
    "Up Sampling": {},
    "Group DRO": {},
    "IRMv1": {"learning_rate": 0.1, "penalty_weight": 10.0},
    "V-REx": {"variance_weight": 10.0},
    "meta-IRM": {"learning_rate": 0.1, "lambda_penalty": 10.0},
    "LightMIRM": {"lambda_penalty": 10.0},
}


@dataclass(frozen=True)
class VerifyConfig:
    """One scorecard run's configuration.

    Attributes:
        sem: The SEM bed to verify on.
        n_epochs: Outer iterations for every trainer (shared so parameter
            magnitudes are comparable across methods).
        penalty_sweep: Ascending penalty weights for the monotonicity test.
        monotone_tolerance: Largest spurious-mass *increase* between
            consecutive sweep points still counted as monotone (absorbs
            optimisation noise such as meta-IRM's sampled environments).
        causal_cosine_floor: Minimum causal alignment the IRM-family
            methods must reach for their recovery check to pass.
        trainer_seed: Seed passed to every trainer.
    """

    sem: SEMConfig = field(default_factory=SEMConfig)
    n_epochs: int = 300
    penalty_sweep: tuple[float, ...] = (0.0, 2.0, 10.0)
    monotone_tolerance: float = 0.02
    causal_cosine_floor: float = 0.9
    trainer_seed: int = 0

    def __post_init__(self) -> None:
        if self.n_epochs < 1:
            raise ValueError("n_epochs must be >= 1")
        if len(self.penalty_sweep) < 2:
            raise ValueError("penalty_sweep needs >= 2 points")
        if list(self.penalty_sweep) != sorted(self.penalty_sweep):
            raise ValueError("penalty_sweep must be ascending")
        if self.monotone_tolerance < 0:
            raise ValueError("monotone_tolerance must be non-negative")

    @classmethod
    def smoke(cls, seed: int = 0) -> "VerifyConfig":
        """CI-sized run: tiny bed, shorter sweep, same checks."""
        return cls(sem=SEMConfig.smoke(seed=seed),
                   penalty_sweep=(0.0, 10.0))


def _fit_and_score(
    bed: SEMBed, name: str, n_epochs: int, seed: int,
    tracer: Tracer = NULL_TRACER, **overrides
) -> dict:
    """Fit one trainer on the bed and compute its scorecard entry."""
    trainer = make_trainer(name, n_epochs=n_epochs, seed=seed, **overrides)
    result = trainer.fit(bed.train_environments, tracer=tracer)
    entry = coefficient_recovery(
        result.theta, bed.causal_idx, bed.spurious_idx, bed.w_causal
    )
    iid = auc_score(
        bed.iid_environment.labels,
        result.predict_proba(bed.iid_environment.features),
    )
    ood = auc_score(
        bed.ood_environment.labels,
        result.predict_proba(bed.ood_environment.features),
    )
    entry.update(iid_auc=iid, ood_auc=ood, ood_gap=iid - ood)
    return entry


def _is_monotone_decreasing(masses: list[float], tolerance: float) -> bool:
    """Non-increasing within tolerance, and strictly lower at the end."""
    steps_ok = all(
        later <= earlier + tolerance
        for earlier, later in zip(masses, masses[1:])
    )
    return steps_ok and masses[-1] < masses[0]


def run_verification(
    config: VerifyConfig | None = None,
    tracer: Tracer | None = None,
) -> dict:
    """Run the full scorecard and return its JSON-compatible payload.

    The payload has four sections: ``trainers`` (per-trainer recovery and
    OOD metrics), ``penalty_sweeps`` (spurious mass along the penalty
    sweep per penalised trainer), ``checks`` (named boolean assertions)
    and ``all_passed``.  With a ``tracer``, every scorecard fit (including
    the penalty-sweep fits) lands in one run log as its own ``fit`` span.
    """
    config = config or VerifyConfig()
    tracer = tracer if tracer is not None else NULL_TRACER
    bed = make_sem_bed(config.sem)

    trainers: dict[str, dict] = {}
    for name in available_trainers():
        overrides = dict(_TRAINER_PROFILES.get(name, {}))
        trainers[name] = _fit_and_score(
            bed, name, config.n_epochs, config.trainer_seed, tracer=tracer,
            **overrides
        )

    sweeps: dict[str, dict] = {}
    for name in available_trainers():
        param = penalty_parameter(name)
        if param is None:
            continue
        masses = []
        for value in config.penalty_sweep:
            overrides = dict(_TRAINER_PROFILES.get(name, {}))
            overrides[param] = value
            entry = _fit_and_score(
                bed, name, config.n_epochs, config.trainer_seed,
                tracer=tracer, **overrides
            )
            masses.append(entry["spurious_mass"])
        sweeps[name] = {
            "parameter": param,
            "values": list(config.penalty_sweep),
            "spurious_mass": masses,
            "monotone": _is_monotone_decreasing(
                masses, config.monotone_tolerance
            ),
        }

    erm_mass = trainers["ERM"]["spurious_mass"]
    erm_gap = trainers["ERM"]["ood_gap"]
    checks = {
        "lightmirm_spurious_below_erm":
            trainers["LightMIRM"]["spurious_mass"] < erm_mass,
        "meta_irm_spurious_below_erm":
            trainers["meta-IRM"]["spurious_mass"] < erm_mass,
        "lightmirm_causal_alignment":
            trainers["LightMIRM"]["causal_cosine"]
            >= config.causal_cosine_floor,
        "meta_irm_causal_alignment":
            trainers["meta-IRM"]["causal_cosine"]
            >= config.causal_cosine_floor,
        "lightmirm_ood_gap_below_erm":
            trainers["LightMIRM"]["ood_gap"] < erm_gap,
        "erm_takes_the_shortcut":
            erm_mass > trainers["LightMIRM"]["spurious_mass"]
            and erm_gap > 0.05,
    }
    for name, sweep in sweeps.items():
        checks[f"penalty_monotone_{_slug(name)}"] = sweep["monotone"]

    return {
        "format": VERIFY_FORMAT,
        "config": _config_dict(config),
        "trainers": trainers,
        "penalty_sweeps": sweeps,
        "checks": checks,
        "all_passed": all(checks.values()),
    }


def _slug(name: str) -> str:
    """Trainer name -> json/check-key-friendly slug."""
    return (
        name.lower().replace(" + ", "_").replace(" ", "_").replace("-", "_")
    )


def _config_dict(config: VerifyConfig) -> dict:
    payload = dataclasses.asdict(config)
    # Tuples -> lists for canonical JSON round-trips.
    payload["penalty_sweep"] = list(config.penalty_sweep)
    sem = payload["sem"]
    sem["train_strengths"] = list(config.sem.train_strengths)
    if sem["w_causal"] is not None:
        sem["w_causal"] = list(sem["w_causal"])
    return payload


def write_verify_json(path: str | pathlib.Path, payload: dict) -> dict:
    """Write the tracked ``VERIFY_invariance.json`` and return the payload."""
    from repro.perfbench.suites import machine_info

    payload = {**payload, "machine": machine_info()}
    pathlib.Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def summarize_verification(payload: dict) -> str:
    """Human-readable rendering of one scorecard run."""
    lines = ["trainer              cos(w_c)  spur_mass  iid_auc  ood_auc   gap"]
    for name, entry in payload["trainers"].items():
        lines.append(
            f"{name:20s} {entry['causal_cosine']:8.3f} "
            f"{entry['spurious_mass']:10.3f} {entry['iid_auc']:8.3f} "
            f"{entry['ood_auc']:8.3f} {entry['ood_gap']:6.3f}"
        )
    lines.append("")
    for name, sweep in payload["penalty_sweeps"].items():
        masses = "  ".join(f"{m:.3f}" for m in sweep["spurious_mass"])
        status = "monotone" if sweep["monotone"] else "NOT MONOTONE"
        lines.append(
            f"{name:20s} {sweep['parameter']}={sweep['values']} "
            f"-> spurious mass [{masses}]  ({status})"
        )
    lines.append("")
    for check, passed in payload["checks"].items():
        lines.append(f"  [{'PASS' if passed else 'FAIL'}] {check}")
    lines.append(
        f"invariance scorecard: "
        f"{'ALL CHECKS PASSED' if payload['all_passed'] else 'FAILURES'}"
    )
    return "\n".join(lines)
