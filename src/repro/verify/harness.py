"""Reusable metamorphic/property harness for invariance assertions.

Each ``assert_*`` helper encodes one metamorphic relation or invariant the
codebase promises, raising ``AssertionError`` with a diagnostic message when
it is violated.  Both the pytest suite and the scorecard consume these, so a
relation is stated exactly once and every future trainer/metric can be
checked against it by calling a function rather than re-deriving the maths.

Relations covered:

* **Monotone-transform invariance** — rank metrics (KS, AUC) must not move
  under strictly increasing score transforms.
* **Label-flip symmetry** — ``AUC(1−y, s) = 1 − AUC(y, s)`` and the signed
  KS identity ``KS(1−y, s) = KS(y, −s)``.
* **Environment-permutation invariance** — trainers whose update is a
  symmetric function of the environments must produce the same parameters
  (to float-accumulation tolerance) whatever order the environments come in.
* **Determinism under a fixed seed** — two fits from the same config are
  bit-identical in parameters and recorded history.
* **Persist round-trip** — a saved and reloaded pipeline scores rows
  exactly like the live one.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.data.dataset import EnvironmentData
from repro.metrics.auc import auc_score
from repro.metrics.ks import ks_score
from repro.train.base import Trainer, TrainResult

__all__ = [
    "monotone_transforms",
    "random_labels_and_scores",
    "random_environments",
    "assert_monotone_transform_invariant",
    "assert_label_flip_symmetry",
    "assert_environment_permutation_invariant",
    "assert_deterministic",
    "assert_persist_round_trip",
]

#: Trainer factory: builds a *fresh* trainer (fit mutates internal state).
TrainerFactory = Callable[[], Trainer]


# --------------------------------------------------------------- generators


def monotone_transforms() -> list[tuple[str, Callable[[np.ndarray], np.ndarray]]]:
    """Named strictly increasing transforms, float-safe on |s| <= ~50.

    Chosen so that scores differing by >= 1e-6 keep a representable float64
    separation after transformation (no accidental tie creation that would
    legitimately change a rank metric).
    """
    return [
        ("affine", lambda s: 2.0 * s + 7.0),
        ("cubic", lambda s: s**3),
        ("scaled_exp", lambda s: np.exp(s / 20.0)),
        ("rank", lambda s: np.searchsorted(np.unique(s), s).astype(np.float64)),
    ]


def random_labels_and_scores(
    rng: np.random.Generator, n: int = 80
) -> tuple[np.ndarray, np.ndarray]:
    """Binary labels with both classes plus rounded finite scores."""
    if n < 2:
        raise ValueError("need n >= 2 for both classes")
    labels = (rng.random(n) < rng.uniform(0.2, 0.8)).astype(np.float64)
    labels[0], labels[1] = 0.0, 1.0
    scores = np.round(rng.uniform(-50.0, 50.0, size=n), 6)
    return labels, scores


def random_environments(
    rng: np.random.Generator,
    n_envs: int = 3,
    n_per_env: int = 100,
    n_features: int = 5,
) -> list[EnvironmentData]:
    """Small dense environments with a shared learnable signal."""
    envs = []
    weights = rng.standard_normal(n_features)
    for i in range(n_envs):
        x = rng.standard_normal((n_per_env, n_features))
        logit = x @ weights + 0.3 * rng.standard_normal(n_per_env)
        y = (rng.random(n_per_env) < 1.0 / (1.0 + np.exp(-logit)))
        y = y.astype(np.float64)
        y[0], y[1] = 0.0, 1.0
        envs.append(EnvironmentData(f"env_{i}", x, y))
    return envs


# --------------------------------------------------------------- assertions


def assert_monotone_transform_invariant(
    metric: Callable[[np.ndarray, np.ndarray], float],
    labels: np.ndarray,
    scores: np.ndarray,
    atol: float = 1e-10,
) -> None:
    """A rank metric must be invariant under strictly increasing transforms."""
    baseline = metric(labels, scores)
    for name, transform in monotone_transforms():
        value = metric(labels, transform(scores))
        if abs(value - baseline) > atol:
            raise AssertionError(
                f"{metric.__name__} moved under strictly monotone transform "
                f"{name!r}: {baseline!r} -> {value!r}"
            )


def assert_label_flip_symmetry(
    labels: np.ndarray, scores: np.ndarray, atol: float = 1e-10
) -> None:
    """Flipping the classes must mirror AUC and negate the KS orientation.

    ``AUC(1−y, s) = 1 − AUC(y, s)`` (rank reversal) and, for the signed
    credit-scoring KS, ``KS(1−y, s) = KS(y, −s)`` — calling the other class
    "bad" is the same as reversing the score direction.
    """
    auc = auc_score(labels, scores)
    auc_flipped = auc_score(1.0 - labels, scores)
    if abs(auc_flipped - (1.0 - auc)) > atol:
        raise AssertionError(
            f"AUC label-flip symmetry violated: AUC={auc!r} but flipped "
            f"AUC={auc_flipped!r} (expected {1.0 - auc!r})"
        )
    ks_flipped = ks_score(1.0 - labels, scores)
    ks_negated = ks_score(labels, -scores)
    if abs(ks_flipped - ks_negated) > atol:
        raise AssertionError(
            f"KS label-flip identity violated: KS(1-y, s)={ks_flipped!r} "
            f"!= KS(y, -s)={ks_negated!r}"
        )


def assert_environment_permutation_invariant(
    factory: TrainerFactory,
    environments: Sequence[EnvironmentData],
    rng: np.random.Generator,
    rtol: float = 1e-7,
    atol: float = 1e-9,
) -> None:
    """Fitting on a permutation of the environments must not change theta.

    Applies to trainers whose objective is a symmetric function of the
    environment set (ERM, up-sampling, GroupDRO, V-REx, IRMv1, complete
    meta-IRM).  Tolerances absorb float accumulation-order differences;
    trainers that *sample* environments by index (LightMIRM, meta-IRM(S))
    are legitimately order-sensitive and must not be passed here.
    """
    environments = list(environments)
    baseline = factory().fit(environments)
    perm = rng.permutation(len(environments))
    if np.array_equal(perm, np.arange(len(environments))):
        # A vacuously-identical order would verify nothing; rotate instead.
        perm = np.roll(perm, 1)
    shuffled = [environments[i] for i in perm]
    permuted = factory().fit(shuffled)
    if not np.allclose(permuted.theta, baseline.theta, rtol=rtol, atol=atol):
        worst = float(np.max(np.abs(permuted.theta - baseline.theta)))
        raise AssertionError(
            f"{baseline.trainer_name}: theta changed under environment "
            f"permutation {perm.tolist()} (max abs diff {worst:.3e})"
        )


def assert_deterministic(
    factory: TrainerFactory, environments: Sequence[EnvironmentData]
) -> None:
    """Two fits from identical config/seed must match bit for bit."""
    first = factory().fit(list(environments))
    second = factory().fit(list(environments))
    _assert_results_identical(first, second)


def _assert_results_identical(first: TrainResult, second: TrainResult) -> None:
    name = first.trainer_name
    if not np.array_equal(first.theta, second.theta):
        worst = float(np.max(np.abs(first.theta - second.theta)))
        raise AssertionError(
            f"{name}: theta differs between same-seed fits "
            f"(max abs diff {worst:.3e})"
        )
    if first.history.objective != second.history.objective:
        raise AssertionError(
            f"{name}: objective history differs between same-seed fits"
        )
    if first.history.env_losses != second.history.env_losses:
        raise AssertionError(
            f"{name}: per-environment loss history differs between "
            "same-seed fits"
        )
    # The fine-tuning baseline carries extra per-environment parameters.
    first_envs = getattr(first, "env_thetas", None)
    second_envs = getattr(second, "env_thetas", None)
    if (first_envs is None) != (second_envs is None):
        raise AssertionError(f"{name}: env_thetas presence differs")
    if first_envs:
        if set(first_envs) != set(second_envs):
            raise AssertionError(f"{name}: env_thetas keys differ")
        for key, theta in first_envs.items():
            if not np.array_equal(theta, second_envs[key]):
                raise AssertionError(
                    f"{name}: env_thetas[{key!r}] differs between "
                    "same-seed fits"
                )


def assert_persist_round_trip(pipeline, dataset, path) -> None:
    """A saved+reloaded pipeline must reproduce ``predict_proba`` exactly."""
    from repro.persist.artifacts import load_pipeline, save_pipeline

    save_pipeline(pipeline, path)
    restored = load_pipeline(path)
    live = pipeline.predict_proba(dataset)
    reloaded = restored.predict_proba(dataset)
    if not np.array_equal(live, reloaded):
        worst = float(np.max(np.abs(live - reloaded)))
        raise AssertionError(
            f"persist round-trip changed scores (max abs diff {worst:.3e})"
        )
