"""Invariance verification subsystem.

Three pieces, layered so every future PR can regress against them:

* :mod:`repro.verify.sem` — closed-form linear-SEM environments where the
  invariant solution and the ERM shortcut are both known exactly.
* :mod:`repro.verify.harness` — reusable metamorphic/property assertions
  (monotone-transform invariance, label-flip symmetry, environment
  permutation, determinism, persist round-trips) shared by the pytest
  suite and the scorecard.
* :mod:`repro.verify.scorecard` — runs every registered trainer on the SEM
  bed and writes the machine-readable ``VERIFY_invariance.json``.

Run via ``python -m repro verify`` (``--smoke`` for the CI-sized bed).
"""

from repro.verify.harness import (
    assert_deterministic,
    assert_environment_permutation_invariant,
    assert_label_flip_symmetry,
    assert_monotone_transform_invariant,
    assert_persist_round_trip,
    monotone_transforms,
    random_environments,
    random_labels_and_scores,
)
from repro.verify.scorecard import (
    VerifyConfig,
    run_verification,
    summarize_verification,
    write_verify_json,
)
from repro.verify.sem import SEMBed, SEMConfig, make_sem_bed

__all__ = [
    "SEMBed",
    "SEMConfig",
    "make_sem_bed",
    "VerifyConfig",
    "run_verification",
    "summarize_verification",
    "write_verify_json",
    "assert_deterministic",
    "assert_environment_permutation_invariant",
    "assert_label_flip_symmetry",
    "assert_monotone_transform_invariant",
    "assert_persist_round_trip",
    "monotone_transforms",
    "random_environments",
    "random_labels_and_scores",
]
