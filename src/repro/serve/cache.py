"""LRU score cache keyed on encoded leaf patterns.

The LR head sees nothing but the one-hot encoding of the per-tree leaf
indices, so two raw rows landing in the same leaves score *identically* —
the ``(n_trees,)`` leaf pattern is a perfect cache key.  With tens of trees
and ~31 leaves each, real traffic collapses onto a modest set of patterns
(loan applicants cluster), making this a high-hit-rate cache that skips the
CSR assembly and the LR dot product, while remaining exact: hits return a
score produced by the same computation as misses.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

__all__ = ["LeafPatternCache"]


class LeafPatternCache:
    """Bounded LRU mapping leaf patterns to scores, with hit/miss counters.

    Args:
        maxsize: Maximum number of cached patterns (>= 1).
    """

    def __init__(self, maxsize: int = 4096):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._store: OrderedDict[bytes, float] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def key(leaf_row: np.ndarray) -> bytes:
        """Stable bytes key of one ``(n_trees,)`` leaf-index row."""
        return np.ascontiguousarray(leaf_row, dtype=np.int64).tobytes()

    def __len__(self) -> int:
        return len(self._store)

    def get(self, key: bytes) -> float | None:
        """Cached score for a pattern, refreshing its recency; else None."""
        score = self._store.get(key)
        if score is None:
            self.misses += 1
            return None
        self._store.move_to_end(key)
        self.hits += 1
        return score

    def put(self, key: bytes, score: float) -> None:
        """Insert (or refresh) a pattern's score, evicting the LRU entry."""
        if key in self._store:
            self._store.move_to_end(key)
        self._store[key] = score
        if len(self._store) > self.maxsize:
            self._store.popitem(last=False)
            self.evictions += 1

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from cache (0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict:
        """JSON-compatible counter state."""
        return {
            "size": len(self._store),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        self._store.clear()
