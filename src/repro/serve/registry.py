"""Versioned model registry with champion/challenger slots.

Production scoring never points at "a JSON file" — it points at a *slot*
(champion, challenger) inside a registry of immutable, metadata-rich model
versions, so a bad model can be rolled back atomically and a candidate can
shadow-score live traffic before promotion.  The on-disk layout is::

    <root>/
        registry.json          # index: versions, slots, slot history
        models/
            v0001.json         # immutable artifact payloads
            v0002.json         #   (same format save_pipeline wrote)

Every index mutation is written to a temp file and ``os.replace``-d into
place, so a crashed promote/rollback never leaves a torn index; artifact
files are never rewritten after creation.  Mutations additionally take an
inter-process ``flock`` on ``<root>/registry.lock`` so concurrent
import/promote/rollback from several processes serialise into a
read-modify-write critical section — without it two processes can read
the same ``next_version`` and one import silently overwrites the other.
Reads stay lock-free: ``os.replace`` guarantees a reader always sees a
complete index, just possibly one mutation old.

This module is also the canonical single-file persistence surface:
:meth:`ModelRegistry.save_file` / :meth:`ModelRegistry.load_file` supersede
the deprecated :func:`repro.persist.save_pipeline` /
:func:`repro.persist.load_pipeline` shims (which delegate here), and the
artifact format is unchanged — pre-registry files load verbatim.
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib
import time
from dataclasses import dataclass

try:  # flock is POSIX-only; degrade to in-process atomicity elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.persist.artifacts import (
    ScoringModel,
    pipeline_to_payload,
    scoring_model_from_payload,
)
from repro.pipeline.pipeline import LoanDefaultPipeline

__all__ = ["ModelRegistry", "ModelVersion", "CHAMPION", "CHALLENGER"]

#: Registry index format version.
REGISTRY_FORMAT = 1

#: The slot live traffic scores against.
CHAMPION = "champion"
#: The slot for a candidate model shadowing live traffic.
CHALLENGER = "challenger"

_SLOTS = (CHAMPION, CHALLENGER)


@dataclass(frozen=True)
class ModelVersion:
    """Index entry of one immutable registry version."""

    version: str
    trainer_name: str
    created_at: float
    metadata: dict
    path: str

    def as_dict(self) -> dict:
        """JSON-compatible index entry."""
        return {
            "version": self.version,
            "trainer_name": self.trainer_name,
            "created_at": self.created_at,
            "metadata": self.metadata,
            "path": self.path,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ModelVersion":
        """Restore an index entry."""
        return cls(
            version=payload["version"],
            trainer_name=payload["trainer_name"],
            created_at=payload["created_at"],
            metadata=payload["metadata"],
            path=payload["path"],
        )


class ModelRegistry:
    """Versioned, slot-addressed storage of GBDT+LR scoring artifacts.

    Usage::

        registry = ModelRegistry(root)
        v1 = registry.save(pipeline, metadata={"run": "weekly"})
        registry.promote(v1)                 # v1 becomes champion
        v2 = registry.save(candidate, slot="challenger")
        model = registry.load("champion")    # slot name or version id
        registry.promote(v2)                 # v2 champion, v1 remembered
        registry.rollback()                  # back to v1

    The first saved version is auto-promoted to champion so a fresh
    registry is immediately servable.
    """

    def __init__(self, root: str | pathlib.Path):
        self.root = pathlib.Path(root)
        self.models_dir = self.root / "models"
        self.index_path = self.root / "registry.json"

    # ------------------------------------------------------------- index io

    @contextlib.contextmanager
    def _locked(self):
        """Serialise one index read-modify-write across processes.

        ``flock`` is tied to the open file description, so the lock file
        is opened fresh per critical section and must never be acquired
        re-entrantly — internal helpers therefore mutate a passed-in
        index instead of calling the locking public methods.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        with open(self.root / "registry.lock", "w") as handle:
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    def _read_index(self) -> dict:
        if not self.index_path.exists():
            return {
                "format": REGISTRY_FORMAT,
                "next_version": 1,
                "versions": {},
                "slots": {},
                "slot_history": {slot: [] for slot in _SLOTS},
            }
        index = json.loads(self.index_path.read_text())
        if index.get("format") != REGISTRY_FORMAT:
            raise ValueError(
                f"unsupported registry format {index.get('format')!r}"
            )
        return index

    def _write_index(self, index: dict) -> None:
        """Atomically replace the index (temp file + rename)."""
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.index_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(index, indent=2) + "\n")
        os.replace(tmp, self.index_path)

    # ------------------------------------------------------------- save/load

    def save(
        self,
        pipeline: LoanDefaultPipeline,
        metadata: dict | None = None,
        slot: str | None = None,
    ) -> str:
        """Store a fitted pipeline as a new immutable version.

        Args:
            pipeline: A fitted :class:`LoanDefaultPipeline`.
            metadata: Free-form JSON-compatible run metadata.
            slot: Optionally promote the new version into a slot right
                away ("champion" or "challenger").

        Returns:
            The new version id (``"v<N>"``).
        """
        payload = pipeline_to_payload(pipeline, metadata=metadata)
        return self._store_payload(payload, slot=slot)

    def import_file(
        self,
        path: str | pathlib.Path,
        metadata: dict | None = None,
        slot: str | None = None,
    ) -> str:
        """Store an existing bare artifact file as a new version.

        Lets artifacts produced elsewhere (another registry, a
        ``save_file`` call, the scale benchmark's trained model) enter a
        registry without reconstructing the pipeline object in memory.
        The payload is validated by restoring it once before storage.

        Args:
            path: Path of a ``save_file``-format artifact.
            metadata: Extra metadata merged over the artifact's own.
            slot: Optionally promote the new version right away.

        Returns:
            The new version id (``"v<N>"``).
        """
        payload = json.loads(pathlib.Path(path).read_text())
        scoring_model_from_payload(payload)  # raises on a bad artifact
        if metadata:
            payload["metadata"] = {**payload.get("metadata", {}), **metadata}
        return self._store_payload(payload, slot=slot)

    def _store_payload(self, payload: dict, slot: str | None = None) -> str:
        """Write one artifact payload as a new immutable version."""
        if slot is not None and slot not in _SLOTS:
            raise ValueError(f"unknown slot {slot!r}; choose from {_SLOTS}")
        with self._locked():
            index = self._read_index()
            version = f"v{index['next_version']:04d}"
            relative = f"models/{version}.json"

            self.models_dir.mkdir(parents=True, exist_ok=True)
            artifact_path = self.root / relative
            tmp = artifact_path.with_suffix(".json.tmp")
            tmp.write_text(json.dumps(payload))
            os.replace(tmp, artifact_path)

            entry = ModelVersion(
                version=version,
                trainer_name=payload["trainer_name"],
                created_at=time.time(),
                metadata=payload["metadata"],
                path=relative,
            )
            index["next_version"] += 1
            index["versions"][version] = entry.as_dict()
            if slot is not None:
                self._promote_in(index, version, slot)
            elif CHAMPION not in index["slots"]:
                self._promote_in(index, version, CHAMPION)
            self._write_index(index)
        return version

    def load(self, ref: str = CHAMPION) -> ScoringModel:
        """Restore a :class:`ScoringModel` by slot name or version id.

        Args:
            ref: ``"champion"``, ``"challenger"``, or a version id like
                ``"v0003"``.

        Raises:
            KeyError: Unknown slot/version, or an empty slot.
        """
        version = self._resolve(ref)
        entry = self.describe(version)
        payload = json.loads((self.root / entry.path).read_text())
        return scoring_model_from_payload(payload)

    def _resolve(self, ref: str) -> str:
        index = self._read_index()
        if ref in _SLOTS:
            if ref not in index["slots"]:
                raise KeyError(f"slot {ref!r} is empty")
            return index["slots"][ref]
        if ref in index["versions"]:
            return ref
        raise KeyError(
            f"unknown version or slot {ref!r}; "
            f"known versions: {sorted(index['versions'])}, slots: {_SLOTS}"
        )

    # ------------------------------------------------------------ lifecycle

    @staticmethod
    def _promote_in(index: dict, version: str, slot: str) -> None:
        """Point a slot at a version inside an already-locked index."""
        previous = index["slots"].get(slot)
        if previous is not None and previous != version:
            index["slot_history"].setdefault(slot, []).append(previous)
        index["slots"][slot] = version

    def promote(self, version: str, slot: str = CHAMPION) -> None:
        """Atomically point a slot at a version, remembering the previous.

        Args:
            version: An existing version id.
            slot: Target slot (champion by default).
        """
        if slot not in _SLOTS:
            raise ValueError(f"unknown slot {slot!r}; choose from {_SLOTS}")
        with self._locked():
            index = self._read_index()
            if version not in index["versions"]:
                raise KeyError(f"unknown version {version!r}")
            self._promote_in(index, version, slot)
            self._write_index(index)

    def rollback(self, slot: str = CHAMPION) -> str:
        """Restore a slot's previous occupant (undo the last promote).

        Returns:
            The version id the slot now points at.

        Raises:
            KeyError: If the slot has no recorded previous occupant.
        """
        if slot not in _SLOTS:
            raise ValueError(f"unknown slot {slot!r}; choose from {_SLOTS}")
        with self._locked():
            index = self._read_index()
            history = index["slot_history"].get(slot, [])
            if not history:
                raise KeyError(
                    f"no previous version recorded for slot {slot!r}"
                )
            version = history.pop()
            index["slots"][slot] = version
            self._write_index(index)
        return version

    # ------------------------------------------------------------ inspection

    def versions(self) -> list[ModelVersion]:
        """All stored versions, oldest first."""
        index = self._read_index()
        return [ModelVersion.from_dict(index["versions"][key])
                for key in sorted(index["versions"])]

    def slots(self) -> dict[str, str]:
        """Current slot assignments (slot -> version id)."""
        return dict(self._read_index()["slots"])

    def describe(self, version: str) -> ModelVersion:
        """Index entry of one version."""
        index = self._read_index()
        if version not in index["versions"]:
            raise KeyError(f"unknown version {version!r}")
        return ModelVersion.from_dict(index["versions"][version])

    # ------------------------------------------------- single-file surface

    @staticmethod
    def save_file(
        pipeline: LoanDefaultPipeline,
        path: str | pathlib.Path,
        metadata: dict | None = None,
    ) -> None:
        """Persist a fitted pipeline as one bare artifact file.

        The canonical replacement for the deprecated
        :func:`repro.persist.save_pipeline`; the format is identical.
        """
        payload = pipeline_to_payload(pipeline, metadata=metadata)
        pathlib.Path(path).write_text(json.dumps(payload))

    @staticmethod
    def load_file(path: str | pathlib.Path) -> ScoringModel:
        """Restore a :class:`ScoringModel` from one bare artifact file.

        The canonical replacement for the deprecated
        :func:`repro.persist.load_pipeline`; pre-registry artifacts load
        unchanged.
        """
        payload = json.loads(pathlib.Path(path).read_text())
        return scoring_model_from_payload(payload)
