"""Serving telemetry: latency histograms, throughput and event counters.

A scoring service is operated by its numbers: request/row counts, batch
sizes, per-batch latency distribution, fallbacks by reason, cache
effectiveness and the current drift level.  Everything here is cheap
enough to update on every request and renders to one JSON-compatible
``snapshot()`` — the schema ``docs/serving.md`` documents and
``repro serve-score`` prints.
"""

from __future__ import annotations

import bisect

import numpy as np

__all__ = ["LatencyHistogram", "ServingTelemetry"]

#: Default latency bucket upper bounds, seconds (log-spaced 10µs → 10s).
DEFAULT_BUCKETS = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0
)


class LatencyHistogram:
    """Fixed-bucket latency histogram with exact count/sum and percentiles.

    Args:
        buckets: Increasing upper bounds in seconds; observations above the
            last bound land in a +Inf overflow bucket.
    """

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError("buckets must be non-empty and increasing")
        self.bounds = bounds
        self.counts = np.zeros(len(bounds) + 1, dtype=np.int64)
        self.total_seconds = 0.0

    @property
    def count(self) -> int:
        return int(self.counts.sum())

    def observe(self, seconds: float) -> None:
        """Record one latency observation."""
        if seconds < 0:
            raise ValueError("latency cannot be negative")
        self.counts[bisect.bisect_left(self.bounds, seconds)] += 1
        self.total_seconds += seconds

    @property
    def mean_seconds(self) -> float:
        n = self.count
        return self.total_seconds / n if n else 0.0

    def percentile(self, q: float) -> float:
        """Upper bucket bound covering the q-th percentile (0 < q <= 100).

        Bucketed percentiles are conservative: the true latency is at most
        the returned bound (+Inf overflow reports the last finite bound).
        """
        if not 0 < q <= 100:
            raise ValueError("q must be in (0, 100]")
        n = self.count
        if n == 0:
            return 0.0
        rank = int(np.ceil(q / 100.0 * n))
        cumulative = np.cumsum(self.counts)
        bucket = int(np.searchsorted(cumulative, rank))
        return self.bounds[min(bucket, len(self.bounds) - 1)]

    def snapshot(self) -> dict:
        """JSON-compatible histogram state."""
        return {
            "count": self.count,
            "mean_s": self.mean_seconds,
            "p50_s": self.percentile(50),
            "p95_s": self.percentile(95),
            "p99_s": self.percentile(99),
            "buckets": {
                f"le_{bound:g}": int(c)
                for bound, c in zip(self.bounds, self.counts)
            } | {"overflow": int(self.counts[-1])},
        }


class ServingTelemetry:
    """Counters + latency for one :class:`~repro.serve.service.ScoringService`.

    Attributes:
        batch_latency: Histogram over per-batch scoring wall times.
        request_latency: Histogram over per-request (single-row) wall times.
    """

    def __init__(self) -> None:
        self.batch_latency = LatencyHistogram()
        self.request_latency = LatencyHistogram()
        self.rows_scored = 0
        self.batches = 0
        self.requests = 0
        self.fallbacks: dict[str, int] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self._busy_seconds = 0.0

    def record_batch(self, n_rows: int, seconds: float) -> None:
        """Account one scored batch."""
        self.rows_scored += n_rows
        self.batches += 1
        self._busy_seconds += seconds
        self.batch_latency.observe(seconds)

    def record_request(self, seconds: float) -> None:
        """Account one single-row request."""
        self.requests += 1
        self.request_latency.observe(seconds)

    def record_fallback(self, reason: str) -> None:
        """Count one champion fallback by reason."""
        self.fallbacks[reason] = self.fallbacks.get(reason, 0) + 1

    def record_cache(self, hits: int, misses: int) -> None:
        """Accumulate cache lookup outcomes from one batch."""
        self.cache_hits += hits
        self.cache_misses += misses

    @property
    def throughput_rows_per_s(self) -> float:
        """Rows scored per second of scoring busy time."""
        if self._busy_seconds == 0:
            return 0.0
        return self.rows_scored / self._busy_seconds

    def snapshot(self) -> dict:
        """The full JSON-compatible telemetry payload (docs/serving.md)."""
        return {
            "rows_scored": self.rows_scored,
            "batches": self.batches,
            "requests": self.requests,
            "throughput_rows_per_s": self.throughput_rows_per_s,
            "fallbacks": dict(self.fallbacks),
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
            },
            "batch_latency": self.batch_latency.snapshot(),
            "request_latency": self.request_latency.snapshot(),
        }

    def summary(self) -> str:
        """One human-readable line per headline number."""
        snap = self.snapshot()
        lines = [
            f"rows scored     {snap['rows_scored']}",
            f"batches         {snap['batches']}",
            f"throughput      {snap['throughput_rows_per_s']:.0f} rows/s",
            f"batch p95       {snap['batch_latency']['p95_s'] * 1e3:.3g} ms",
        ]
        if snap["fallbacks"]:
            reasons = ", ".join(f"{k}={v}" for k, v in
                                sorted(snap["fallbacks"].items()))
            lines.append(f"fallbacks       {reasons}")
        total_lookups = self.cache_hits + self.cache_misses
        if total_lookups:
            lines.append(
                f"cache hit rate  {self.cache_hits / total_lookups:.1%}"
            )
        return "\n".join(lines)
