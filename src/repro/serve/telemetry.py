"""Serving telemetry: latency histograms, throughput and event counters.

A scoring service is operated by its numbers: request/row counts, batch
sizes, per-batch latency distribution, fallbacks by reason, cache
effectiveness and the current drift level.  Everything here is cheap
enough to update on every request and renders to one JSON-compatible
``snapshot()`` — the schema ``docs/serving.md`` documents and
``repro serve-score`` prints.

The bucket machinery lives in :class:`repro.obs.metrics.Histogram` (the
shared implementation behind the whole observability layer);
:class:`LatencyHistogram` pins the latency bucket layout and keeps the
``docs/serving.md`` snapshot schema byte-compatible.
"""

from __future__ import annotations

import threading

from repro.obs.metrics import Histogram

__all__ = ["FrontendTelemetry", "LatencyHistogram", "ServingTelemetry"]

#: Default latency bucket upper bounds, seconds (log-spaced 10µs → 10s).
DEFAULT_BUCKETS = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0
)


class LatencyHistogram(Histogram):
    """Fixed-bucket latency histogram with exact count/sum and percentiles.

    A :class:`~repro.obs.metrics.Histogram` specialised for latencies:
    default log-spaced seconds buckets, negative observations rejected,
    and the historical ``*_s``-suffixed snapshot keys preserved.

    Args:
        buckets: Increasing upper bounds in seconds; observations above the
            last bound land in a +Inf overflow bucket.
    """

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        super().__init__(buckets)

    def observe(self, seconds: float) -> None:
        """Record one latency observation."""
        if seconds < 0:
            raise ValueError("latency cannot be negative")
        super().observe(seconds)

    @property
    def total_seconds(self) -> float:
        """Exact sum of all observations (alias of :attr:`total`)."""
        return self.total

    @property
    def mean_seconds(self) -> float:
        return self.mean

    def snapshot(self) -> dict:
        """JSON-compatible histogram state (docs/serving.md schema)."""
        return {
            "count": self.count,
            "mean_s": self.mean_seconds,
            "p50_s": self.percentile(50),
            "p95_s": self.percentile(95),
            "p99_s": self.percentile(99),
            "buckets": self.bucket_counts(),
        }


class ServingTelemetry:
    """Counters + latency for one :class:`~repro.serve.service.ScoringService`.

    Attributes:
        batch_latency: Histogram over per-batch scoring wall times.
        request_latency: Histogram over per-request (single-row) wall times.
    """

    def __init__(self) -> None:
        self.batch_latency = LatencyHistogram()
        self.request_latency = LatencyHistogram()
        self.rows_scored = 0
        self.batches = 0
        self.requests = 0
        self.fallbacks: dict[str, int] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self._busy_seconds = 0.0

    def record_batch(self, n_rows: int, seconds: float) -> None:
        """Account one scored batch."""
        self.rows_scored += n_rows
        self.batches += 1
        self._busy_seconds += seconds
        self.batch_latency.observe(seconds)

    def record_request(self, seconds: float) -> None:
        """Account one single-row request."""
        self.requests += 1
        self.request_latency.observe(seconds)

    def record_fallback(self, reason: str) -> None:
        """Count one champion fallback by reason."""
        self.fallbacks[reason] = self.fallbacks.get(reason, 0) + 1

    def record_cache(self, hits: int, misses: int) -> None:
        """Accumulate cache lookup outcomes from one batch."""
        self.cache_hits += hits
        self.cache_misses += misses

    @property
    def busy_seconds(self) -> float:
        """Cumulative scoring wall time (the denominator of throughput)."""
        return self._busy_seconds

    @property
    def throughput_rows_per_s(self) -> float:
        """Rows scored per second of scoring busy time."""
        if self._busy_seconds == 0:
            return 0.0
        return self.rows_scored / self._busy_seconds

    def snapshot(self) -> dict:
        """The full JSON-compatible telemetry payload (docs/serving.md)."""
        return {
            "rows_scored": self.rows_scored,
            "batches": self.batches,
            "requests": self.requests,
            "throughput_rows_per_s": self.throughput_rows_per_s,
            "fallbacks": dict(self.fallbacks),
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
            },
            "batch_latency": self.batch_latency.snapshot(),
            "request_latency": self.request_latency.snapshot(),
        }

    def summary(self) -> str:
        """One human-readable line per headline number."""
        snap = self.snapshot()
        lines = [
            f"rows scored     {snap['rows_scored']}",
            f"batches         {snap['batches']}",
            f"throughput      {snap['throughput_rows_per_s']:.0f} rows/s",
            f"batch p95       {snap['batch_latency']['p95_s'] * 1e3:.3g} ms",
        ]
        if snap["fallbacks"]:
            reasons = ", ".join(f"{k}={v}" for k, v in
                                sorted(snap["fallbacks"].items()))
            lines.append(f"fallbacks       {reasons}")
        total_lookups = self.cache_hits + self.cache_misses
        if total_lookups:
            lines.append(
                f"cache hit rate  {self.cache_hits / total_lookups:.1%}"
            )
        return "\n".join(lines)


class FrontendTelemetry:
    """Counters + end-to-end latency for one multi-worker front-end.

    Everything a :class:`~repro.serve.frontend.ScoringFrontend` operator
    needs to see that the bounded queue and the fault-recovery paths are
    doing their jobs: admissions vs sheds vs refusals, worker deaths and
    requeues, model swaps, plus the admission→resolution latency
    distribution (which, unlike :class:`ServingTelemetry`'s per-batch
    clocks, includes queueing delay — the number backpressure trades off).

    Unlike :class:`ServingTelemetry` (one writer, the worker loop), this
    object is written from two threads at once — the caller thread
    (admissions, sheds, refusals) and the collector thread (resolutions,
    requeues, deaths) — so every mutation takes an internal mutex.
    ``x += 1`` is *not* atomic in CPython (LOAD/ADD/STORE interleave and
    drop increments under contention), and the acceptance criterion here
    is exact counter aggregation, not "close enough".

    Attributes:
        request_latency: Histogram over admission→resolution wall times.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.request_latency = LatencyHistogram()
        self.admitted = 0
        self.shed = 0
        self.refused = 0
        self.errors = 0
        self.requeued = 0
        self.worker_deaths = 0
        self.swaps = 0

    def record_admitted(self) -> None:
        """Count one request accepted past admission control."""
        with self._lock:
            self.admitted += 1

    def record_shed(self) -> None:
        """Count one request refused by backpressure (queue full)."""
        with self._lock:
            self.shed += 1

    def record_refused(self) -> None:
        """Count one request refused at the door (malformed)."""
        with self._lock:
            self.refused += 1

    def record_request(self, seconds: float) -> None:
        """Account one resolved (scored or errored) request."""
        with self._lock:
            self.request_latency.observe(seconds)

    def record_request_error(self) -> None:
        """Count one admitted request that resolved to an error."""
        with self._lock:
            self.errors += 1

    def record_requeued(self, n: int) -> None:
        """Count requests re-dispatched after their worker died."""
        with self._lock:
            self.requeued += n

    def record_worker_death(self) -> None:
        """Count one worker process found dead and respawned."""
        with self._lock:
            self.worker_deaths += 1

    def record_swap(self) -> None:
        """Count one atomic model-generation swap."""
        with self._lock:
            self.swaps += 1

    def snapshot(self) -> dict:
        """JSON-compatible front-end telemetry (docs/serving.md schema)."""
        with self._lock:
            return {
                "admitted": self.admitted,
                "shed": self.shed,
                "refused": self.refused,
                "errors": self.errors,
                "requeued": self.requeued,
                "worker_deaths": self.worker_deaths,
                "swaps": self.swaps,
                "request_latency": self.request_latency.snapshot(),
            }
