"""The closed drift loop: trip → retrain → gated eval → promote/rollback.

:class:`LifecycleController` turns the serving tier's "drift latched"
dead-end into a recovery path.  One :meth:`~LifecycleController.run_recovery`
call walks the state machine::

    drift_detected ── retraining ── evaluating ──┬── promoting ── promoted
                          │             │        └── gates_failed (abort)
                      retrain_failed  eval_failed (abort, champion untouched)
                                                     │
                                    (post-promote regression) rolled_back

* **Retraining** runs as a :class:`~repro.parallel.engine.ParallelEngine`
  task: the recovery dataset is written to disk once and the module-level
  worker trains a fresh pipeline and saves a bare artifact — the
  controller never blocks the scoring path on training.
* **Evaluation** restores the challenger artifact and scores it on the
  held-out dataset per province; :class:`PromotionGates` compares its
  KS/AUC against the current champion's on the *same* rows.
* **Promotion** goes through :class:`~repro.serve.registry.ModelRegistry`
  (challenger slot first, champion on success), so the previous champion
  stays one :meth:`~repro.serve.registry.ModelRegistry.rollback` away;
  the post-promotion check re-evaluates and rolls back on regression.
* A :class:`~repro.serve.frontend.ScoringFrontend` handed to the
  controller gets the promoted model pushed as a new shared-memory
  generation, and the tripped :class:`~repro.serve.degradation.DriftGuard`
  is reset so monitoring restarts against the new regime.

Every stage transition is a ``lifecycle_stage`` tracer event and the whole
recovery runs under a ``serve_lifecycle`` span, so a run log replays the
loop end to end.
"""

from __future__ import annotations

import pathlib
import tempfile
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.data.dataset import LoanDataset
from repro.metrics.fairness import FairnessReport, evaluate_environments
from repro.obs.runlog import LIFECYCLE_SPAN, LIFECYCLE_STAGE_EVENT
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.parallel.engine import ParallelEngine
from repro.persist.artifacts import ScoringModel
from repro.serve.registry import CHALLENGER, ModelRegistry

__all__ = [
    "PromotionGates",
    "RetrainConfig",
    "LifecycleController",
    "evaluate_model",
]


@dataclass(frozen=True)
class PromotionGates:
    """Held-out per-province KS/AUC thresholds a challenger must clear.

    Attributes:
        min_mean_ks: Absolute floor on the challenger's mean per-province
            KS.
        min_mean_auc: Absolute floor on its mean per-province AUC.
        max_ks_regression: How far the challenger's mean KS may fall
            below the champion's (on the same held-out rows) and still
            promote; 0 demands no regression at all.
    """

    min_mean_ks: float = 0.0
    min_mean_auc: float = 0.5
    max_ks_regression: float = 0.0

    def check(self, challenger: FairnessReport,
              champion: FairnessReport | None) -> tuple[bool, str]:
        """Evaluate the gates; returns ``(passed, reason)``."""
        if challenger.mean_ks < self.min_mean_ks:
            return False, (
                f"challenger mean KS {challenger.mean_ks:.4f} below floor "
                f"{self.min_mean_ks:.4f}"
            )
        if challenger.mean_auc < self.min_mean_auc:
            return False, (
                f"challenger mean AUC {challenger.mean_auc:.4f} below floor "
                f"{self.min_mean_auc:.4f}"
            )
        if champion is not None:
            floor = champion.mean_ks - self.max_ks_regression
            if challenger.mean_ks < floor:
                return False, (
                    f"challenger mean KS {challenger.mean_ks:.4f} regresses "
                    f"past champion {champion.mean_ks:.4f} - "
                    f"{self.max_ks_regression:.4f}"
                )
        return True, "gates passed"


@dataclass(frozen=True)
class RetrainConfig:
    """How the background retrain builds its candidate pipeline.

    Attributes:
        trainer: Trainer name accepted by
            :func:`repro.train.registry.make_trainer` (``"ERM"``,
            ``"LightMIRM"``, ...).
        trainer_overrides: Config overrides for the trainer (e.g.
            ``{"n_epochs": 20}``).
        gbdt: :class:`~repro.gbdt.boosting.GBDTParams` field overrides
            (e.g. ``{"n_trees": 8}``) — keep small for fast recovery.
        tree: :class:`~repro.gbdt.tree.TreeParams` field overrides.
    """

    trainer: str = "ERM"
    trainer_overrides: dict = field(default_factory=dict)
    gbdt: dict = field(default_factory=dict)
    tree: dict = field(default_factory=dict)


def _retrain_task(payload: dict) -> str:
    """Train a candidate pipeline and save its artifact (worker-side).

    Module-level so :class:`ParallelEngine` can pickle it under any start
    method; everything crosses the process boundary as paths and small
    dicts.  Returns the artifact path.
    """
    from repro.gbdt.boosting import GBDTParams
    from repro.gbdt.tree import TreeParams
    from repro.pipeline.pipeline import LoanDefaultPipeline
    from repro.serve.registry import ModelRegistry as _Registry
    from repro.train.registry import make_trainer

    train = LoanDataset.load(payload["dataset_path"])
    trainer = make_trainer(payload["trainer"],
                           **payload["trainer_overrides"])
    params = GBDTParams(tree=TreeParams(**payload["tree"]),
                        **payload["gbdt"])
    pipeline = LoanDefaultPipeline(trainer, gbdt_params=params)
    pipeline.fit(train)
    artifact_path = payload["artifact_path"]
    _Registry.save_file(pipeline, artifact_path,
                        metadata=payload["metadata"])
    return artifact_path


def evaluate_model(model: ScoringModel,
                   dataset: LoanDataset) -> FairnessReport:
    """Held-out per-province KS/AUC of one scorer (the default gate eval)."""
    labels_by_env: dict[str, np.ndarray] = {}
    scores_by_env: dict[str, np.ndarray] = {}
    for env in dataset.environments():
        labels_by_env[env.name] = env.labels
        scores_by_env[env.name] = model.predict_proba(env.features)
    return evaluate_environments(labels_by_env, scores_by_env)


class LifecycleController:
    """Runs one drift-recovery loop against a registry (and front-end).

    Usage::

        controller = LifecycleController(
            registry, holdout=holdout_dataset,
            retrain=RetrainConfig(trainer="ERM",
                                  trainer_overrides={"n_epochs": 10}),
        )
        report = controller.run_recovery(retrain_dataset)
        assert report["outcome"] == "promoted"

    Args:
        registry: The registry whose champion slot the loop manages.
        holdout: Held-out dataset the promotion gates evaluate on.
        retrain: Candidate-training recipe.
        gates: Promotion thresholds.
        engine: Engine the retrain task runs on (inline by default —
            ``n_jobs`` and start method are the caller's policy).
        tracer: Optional run tracer (``serve_lifecycle`` span +
            ``lifecycle_stage`` events).
        evaluate_fn: Evaluation hook ``(model, dataset) -> FairnessReport``;
            injectable so fault tests can make evaluation itself fail.
        frontend: Optional :class:`~repro.serve.frontend.ScoringFrontend`
            to push the promoted model into (as a new generation).
        drift_guard: Optional guard to reset once recovery promotes.
        workdir: Scratch directory for the dataset/artifact handoff files
            (a temp directory is created per run when omitted).
        health_monitor: Optional :class:`~repro.obs.live.HealthMonitor`.
            The controller subscribes to its transitions (see
            :meth:`attach_health_monitor`), so a ``→ critical`` flip
            arms a recovery request readable via
            :meth:`consume_recovery_request` — and each recovery's
            stages land in the same run log as the alerts that caused
            it, making drift → alert → retrain observable end-to-end.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        holdout: LoanDataset,
        retrain: RetrainConfig | None = None,
        gates: PromotionGates | None = None,
        engine: ParallelEngine | None = None,
        tracer: Tracer | None = None,
        evaluate_fn: Callable[[ScoringModel, LoanDataset],
                              FairnessReport] | None = None,
        frontend=None,
        drift_guard=None,
        workdir: str | pathlib.Path | None = None,
        health_monitor=None,
    ):
        self.registry = registry
        self.holdout = holdout
        self.retrain = retrain or RetrainConfig()
        self.gates = gates or PromotionGates()
        self.engine = engine or ParallelEngine()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.evaluate_fn = evaluate_fn or evaluate_model
        self.frontend = frontend
        self.drift_guard = drift_guard
        self.workdir = workdir
        self._recovery_requested: dict | None = None
        if health_monitor is not None:
            self.attach_health_monitor(health_monitor)

    # ------------------------------------------------------- health wiring

    def attach_health_monitor(self, health_monitor) -> None:
        """Subscribe to a health monitor's state transitions.

        A transition *into* ``critical`` records a pending recovery
        request (with the driving reasons); the serving loop polls
        :meth:`consume_recovery_request` and, when armed, calls
        :meth:`run_recovery` with fresh data.  The hook never triggers
        retraining inline — it runs on the front-end collector thread,
        which must never block on training.
        """
        def _on_transition(from_state: str, to_state: str,
                           reasons: list) -> None:
            if to_state == "critical":
                self._recovery_requested = {
                    "from_state": from_state,
                    "reasons": list(reasons),
                }

        health_monitor.on_transition(_on_transition)

    def consume_recovery_request(self) -> dict | None:
        """Pop the pending health-triggered recovery request, if any."""
        request, self._recovery_requested = self._recovery_requested, None
        return request

    # ------------------------------------------------------------ the loop

    def run_recovery(self, retrain_dataset: LoanDataset,
                     trigger: dict | None = None) -> dict:
        """Walk drift_detected → retrain → eval → promote once.

        Args:
            retrain_dataset: Rows representing the drifted regime the
                candidate should be trained on.
            trigger: Optional provenance of what armed this recovery
                (e.g. the dict from :meth:`consume_recovery_request`);
                recorded on the ``drift_detected`` stage event.

        Returns:
            A JSON-compatible recovery report: ``outcome`` (``"promoted"``,
            ``"rolled_back"``, ``"retrain_failed"``, ``"eval_failed"`` or
            ``"gates_failed"``), the ``stages`` visited, version ids and
            per-stage detail.  Aborted outcomes leave the champion slot
            untouched — that is the whole point of the gates.
        """
        report: dict = {"stages": [], "outcome": None}
        with self.tracer.span(LIFECYCLE_SPAN):
            detected_fields: dict = {}
            if self.drift_guard is not None:
                detected_fields["guard"] = self.drift_guard.snapshot()
            if trigger is not None:
                detected_fields["trigger"] = trigger
                report["trigger"] = trigger
            self._stage(report, "drift_detected", **detected_fields)
            champion_before = self.registry.slots().get("champion")
            report["champion_before"] = champion_before

            # -- retrain -------------------------------------------------
            self._stage(report, "retraining",
                        trainer=self.retrain.trainer,
                        n_rows=retrain_dataset.n_samples)
            try:
                artifact_path = self._run_retrain(retrain_dataset)
            except Exception as exc:  # noqa: BLE001 - reported, not raised
                report["outcome"] = "retrain_failed"
                report["error"] = repr(exc)
                self._stage(report, "aborted", reason="retrain_failed")
                return report

            challenger_version = self.registry.import_file(
                artifact_path,
                metadata={"origin": "drift_recovery"},
                slot=CHALLENGER,
            )
            report["challenger_version"] = challenger_version

            # -- gated evaluation ---------------------------------------
            self._stage(report, "evaluating",
                        challenger_version=challenger_version)
            try:
                challenger_model = self.registry.load(challenger_version)
                challenger_report = self.evaluate_fn(challenger_model,
                                                     self.holdout)
                champion_report = None
                if champion_before is not None:
                    champion_report = self.evaluate_fn(
                        self.registry.load(champion_before), self.holdout
                    )
            except Exception as exc:  # noqa: BLE001 - abort, don't promote
                report["outcome"] = "eval_failed"
                report["error"] = repr(exc)
                self._stage(report, "aborted", reason="eval_failed")
                return report
            report["challenger_eval"] = challenger_report.summary()
            if champion_report is not None:
                report["champion_eval"] = champion_report.summary()

            passed, reason = self.gates.check(challenger_report,
                                              champion_report)
            report["gates"] = {"passed": passed, "reason": reason}
            if not passed:
                report["outcome"] = "gates_failed"
                self._stage(report, "aborted", reason=reason)
                return report

            # -- promote (with post-check rollback) ----------------------
            self._stage(report, "promoting",
                        challenger_version=challenger_version)
            self.registry.promote(challenger_version)
            try:
                post_report = self.evaluate_fn(
                    self.registry.load("champion"), self.holdout
                )
                post_passed, post_reason = self.gates.check(post_report,
                                                            champion_report)
            except Exception as exc:  # noqa: BLE001 - treat as regression
                post_passed, post_reason = False, repr(exc)
            if not post_passed and champion_before is not None:
                restored = self.registry.rollback()
                report["outcome"] = "rolled_back"
                report["restored_version"] = restored
                self._stage(report, "rolled_back", reason=post_reason,
                            restored_version=restored)
                return report

            report["outcome"] = "promoted"
            report["promoted_version"] = challenger_version
            if self.frontend is not None:
                generation = self.frontend.publish(
                    challenger_model, version=challenger_version
                )
                report["generation"] = generation
            if self.drift_guard is not None:
                self.drift_guard.reset_trip()
            self._stage(report, "promoted",
                        promoted_version=challenger_version)
        return report

    # ------------------------------------------------------------- helpers

    def _run_retrain(self, retrain_dataset: LoanDataset) -> str:
        """Ship the dataset to disk and run the retrain task on the engine."""
        if self.workdir is not None:
            workdir = pathlib.Path(self.workdir)
            workdir.mkdir(parents=True, exist_ok=True)
        else:
            workdir = pathlib.Path(tempfile.mkdtemp(prefix="repro-recover-"))
        dataset_path = workdir / "retrain_dataset.npz"
        retrain_dataset.save(dataset_path)
        payload = {
            "dataset_path": str(dataset_path),
            "artifact_path": str(workdir / "challenger.json"),
            "trainer": self.retrain.trainer,
            "trainer_overrides": dict(self.retrain.trainer_overrides),
            "gbdt": dict(self.retrain.gbdt),
            "tree": dict(self.retrain.tree),
            "metadata": {"origin": "drift_recovery",
                         "trainer": self.retrain.trainer},
        }
        return self.engine.map(_retrain_task, [payload])[0]

    def _stage(self, report: dict, stage: str, **fields) -> None:
        report["stages"].append(stage)
        self.tracer.event(LIFECYCLE_STAGE_EVENT, stage=stage, **fields)
