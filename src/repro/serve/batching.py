"""Micro-batching queue: coalesce scoring requests into vectorized calls.

Row-at-a-time scoring pays the GBDT routing + CSR assembly fixed costs per
request; the whole stack is vectorized, so coalescing N queued requests
into one ``predict_proba`` call amortises those costs N ways without
changing a single score (see the bit-identity test and
``BENCH_serving.json``).  The batcher is synchronous and deterministic —
requests are scored in submission order when the queue reaches
``max_batch_size`` or on an explicit :meth:`flush` — which keeps it easy
to embed in a request loop, a thread, or an async wrapper.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["MicroBatcher", "Ticket"]


class Ticket:
    """Handle to one submitted request; resolves when its batch is scored."""

    __slots__ = ("_score",)

    def __init__(self) -> None:
        self._score: float | None = None

    @property
    def done(self) -> bool:
        """Whether the request's batch has been scored."""
        return self._score is not None

    @property
    def score(self) -> float:
        """The request's probability; raises if the batch is still queued."""
        if self._score is None:
            raise RuntimeError("request not scored yet; flush the batcher")
        return self._score

    def _resolve(self, score: float) -> None:
        self._score = score


class MicroBatcher:
    """Coalesces single-row requests into one vectorized scoring call.

    Args:
        score_batch: Vectorized scorer mapping an ``(n, d)`` matrix to
            ``n`` probabilities.
        max_batch_size: Auto-flush threshold; queue length never exceeds it.
    """

    def __init__(
        self,
        score_batch: Callable[[np.ndarray], np.ndarray],
        max_batch_size: int = 256,
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        self._score_batch = score_batch
        self.max_batch_size = max_batch_size
        self._rows: list[np.ndarray] = []
        self._tickets: list[Ticket] = []
        self.batches_flushed = 0
        self.rows_scored = 0

    @property
    def pending(self) -> int:
        """Requests queued but not yet scored."""
        return len(self._tickets)

    def submit(self, row: np.ndarray) -> Ticket:
        """Queue one feature row; auto-flushes at ``max_batch_size``.

        Args:
            row: A ``(d,)`` raw feature vector.

        Returns:
            A :class:`Ticket` that resolves at the next flush (immediately,
            if this submission filled the batch).
        """
        row = np.asarray(row, dtype=np.float64)
        if row.ndim != 1:
            raise ValueError(f"expected a 1-D feature row, got {row.shape}")
        ticket = Ticket()
        self._rows.append(row)
        self._tickets.append(ticket)
        if len(self._tickets) >= self.max_batch_size:
            self.flush()
        return ticket

    def flush(self) -> int:
        """Score every queued request in one vectorized call.

        Returns:
            The number of requests scored (0 when the queue was empty).
        """
        if not self._tickets:
            return 0
        rows = np.vstack(self._rows)
        tickets = self._tickets
        self._rows, self._tickets = [], []
        scores = np.asarray(self._score_batch(rows), dtype=np.float64)
        if scores.shape != (len(tickets),):
            raise RuntimeError(
                f"scorer returned {scores.shape}, expected ({len(tickets)},)"
            )
        for ticket, score in zip(tickets, scores):
            ticket._resolve(float(score))
        self.batches_flushed += 1
        self.rows_scored += len(tickets)
        return len(tickets)
