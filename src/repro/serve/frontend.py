"""Multi-worker scoring front-end: admission control, fan-out, recovery.

:class:`ScoringFrontend` is the request layer in front of N scoring
*worker processes*.  The parent publishes model artifacts once into shared
memory (:mod:`repro.serve.shm_publish`) and workers attach zero-copy
views, each running its own :class:`~repro.serve.service.ScoringService`
(micro-batcher included) over the shared arrays.  The parent side is
asyncio-friendly — :meth:`ScoringFrontend.score` awaits a result — but
every primitive is also callable synchronously through
:class:`FrontendTicket`, so benches, the CLI and tests need no event loop.

Operating contract:

* **Backpressure, never silent drops.**  Admission is bounded by
  ``max_queue`` outstanding requests; request ``max_queue + 1`` resolves
  *immediately* to an explicit 503-style :data:`OVERLOADED` result and is
  counted in telemetry.  Nothing is ever dropped without a result.
* **Generation-stamped scoring.**  Every admitted request carries the
  model generation that was live at admission.  Publishing a new model is
  an atomic pack-swap: a fresh immutable generation, loaded by workers on
  their next control poll — requests admitted before the swap score on
  their old generation, bit-identically.
* **Fault isolation.**  A worker death mid-batch re-dispatches that
  worker's in-flight requests to surviving workers (or resolves them with
  an error naming the dead worker when none survive) and respawns the
  worker.  A poison row (non-finite values, wrong width) fails *only its
  own request* — the rest of the micro-batch is rescored row-by-row.
* **Bit-identity.**  Scores are exactly single-process
  ``ScoringService.predict_proba`` for every worker count: batching and
  fan-out change when/where a score is computed, never its value.
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing
import os
import queue as queue_mod
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass

import numpy as np

from repro.parallel.engine import default_start_method
from repro.parallel.shared import PackSpec
from repro.persist.artifacts import ScoringModel
from repro.serve.degradation import DriftGuard
from repro.serve.shm_publish import ModelPublisher, attach_model
from repro.serve.telemetry import FrontendTelemetry

__all__ = [
    "FrontendConfig",
    "FrontendResult",
    "FrontendTicket",
    "ScoringFrontend",
    "OK",
    "OVERLOADED",
    "ERROR",
]

#: Result statuses.
OK = "ok"
OVERLOADED = "overloaded"
ERROR = "error"


@dataclass(frozen=True)
class FrontendConfig:
    """Operating knobs of one :class:`ScoringFrontend`.

    Attributes:
        n_workers: Scoring worker process count.
        max_batch_size: Per-worker micro-batch auto-flush threshold.
        max_queue: Admission bound — outstanding (admitted, unresolved)
            requests; the ``max_queue + 1``-th submit sheds.
        poll_timeout_s: Worker block time waiting for the first request of
            a batch (also the cadence of control-message polling).
        start_method: Worker start method; ``None`` picks the platform
            default (``fork`` where available).
        ready_timeout_s: Parent-side wait for worker startup handshakes.
    """

    n_workers: int = 2
    max_batch_size: int = 64
    max_queue: int = 1024
    poll_timeout_s: float = 0.02
    start_method: str | None = None
    ready_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")


@dataclass(frozen=True)
class FrontendResult:
    """Terminal outcome of one scoring request.

    Attributes:
        status: ``"ok"``, ``"overloaded"`` or ``"error"``.
        score: The default probability (``ok`` only).
        generation: Model generation that scored the request (``ok``
            only; ``-1`` otherwise).
        context: Human-readable failure context (non-``ok`` only).
    """

    status: str
    score: float = float("nan")
    generation: int = -1
    context: str = ""

    @property
    def ok(self) -> bool:
        return self.status == OK


class FrontendTicket:
    """Handle to one admitted (or immediately refused) request."""

    __slots__ = ("request_id", "_future")

    def __init__(self, request_id: int, future: Future):
        self.request_id = request_id
        self._future = future

    @property
    def done(self) -> bool:
        return self._future.done()

    def result(self, timeout: float | None = None) -> FrontendResult:
        """Block until the request resolves (sync callers)."""
        return self._future.result(timeout)

    async def wait(self) -> FrontendResult:
        """Await resolution (asyncio callers)."""
        return await asyncio.wrap_future(self._future)


# --------------------------------------------------------------- worker side


def _resolve_batch(services: dict, batch: list) -> list[tuple]:
    """Score one drained batch, grouped by generation, poison-isolated.

    Returns response tuples ``(req_id, status, value, generation)`` in
    the same order requests were drained.
    """
    from repro.serve.service import ScoringService  # noqa: F401 (doc link)

    responses: dict[int, tuple] = {}
    by_generation: dict[int, list[tuple[int, np.ndarray]]] = {}
    for req_id, row, generation in batch:
        by_generation.setdefault(generation, []).append((req_id, row))
    for generation, members in by_generation.items():
        service = services.get(generation)
        if service is None:
            for req_id, _ in members:
                responses[req_id] = (
                    req_id, ERROR,
                    f"generation {generation} is not loaded in this worker",
                    generation,
                )
            continue
        try:
            tickets = [service.submit(row) for _, row in members]
            service.flush()
            for (req_id, _), ticket in zip(members, tickets):
                responses[req_id] = (req_id, OK, ticket.score, generation)
        except Exception:
            # Poison isolation: rescore row-by-row so the blast radius is
            # exactly the failing request(s).
            for req_id, row in members:
                try:
                    score = float(service.score_batch(row[None, :])[0])
                    responses[req_id] = (req_id, OK, score, generation)
                except Exception as exc:  # noqa: BLE001 - shipped as context
                    responses[req_id] = (
                        req_id, ERROR,
                        f"request {req_id} failed scoring: {exc!r}",
                        generation,
                    )
    return [responses[req_id] for req_id, _, __ in batch]


def _worker_main(worker_id: int, request_q, response_q, control_q,
                 initial: list[tuple[int, PackSpec]],
                 max_batch_size: int, poll_timeout_s: float) -> None:
    """One scoring worker: attach shared models, batch, score, respond.

    Module-level (picklable) so it runs under ``fork`` and ``spawn``.
    """
    from repro.serve.service import ScoringService, ServiceConfig

    packs: dict[int, object] = {}
    services: dict[int, ScoringService] = {}

    def load(generation: int, spec: PackSpec) -> None:
        if generation in services:
            return
        model, pack = attach_model(spec)
        packs[generation] = pack
        services[generation] = ScoringService(
            model, config=ServiceConfig(max_batch_size=max_batch_size)
        )

    for generation, spec in initial:
        load(generation, spec)
    response_q.put(("ready", worker_id, os.getpid()))

    paused = False
    running = True
    while running:
        while True:  # control first: swaps/pauses beat data
            try:
                message = control_q.get_nowait()
            except queue_mod.Empty:
                break
            kind = message[0]
            if kind == "stop":
                running = False
            elif kind == "load":
                load(message[1], message[2])
            elif kind == "pause":
                paused = True
            elif kind == "resume":
                paused = False
        if not running:
            break
        if paused:
            time.sleep(poll_timeout_s)
            continue
        try:
            first = request_q.get(timeout=poll_timeout_s)
        except queue_mod.Empty:
            continue
        batch = [first]
        while len(batch) < max_batch_size:
            try:
                batch.append(request_q.get_nowait())
            except queue_mod.Empty:
                break
        # A swap racing admission: requests can carry a generation whose
        # "load" control message has not been polled yet.  Drain control
        # until every requested generation is resolvable (bounded wait).
        deadline = time.monotonic() + 5.0
        while (any(gen not in services for _, __, gen in batch)
               and time.monotonic() < deadline):
            try:
                message = control_q.get(timeout=0.01)
            except queue_mod.Empty:
                continue
            if message[0] == "load":
                load(message[1], message[2])
            elif message[0] == "stop":
                running = False
                break
        response_q.put(("results", worker_id, _resolve_batch(services, batch)))

    for pack in packs.values():
        pack.close()


# --------------------------------------------------------------- parent side


class _WorkerHandle:
    """Parent-side state of one worker process."""

    def __init__(self, worker_id: int, process, request_q, control_q):
        self.worker_id = worker_id
        self.process = process
        self.request_q = request_q
        self.control_q = control_q
        self.ready = False

    @property
    def alive(self) -> bool:
        return self.process.is_alive()


class ScoringFrontend:
    """Bounded-queue scoring front door over N shared-memory workers.

    Usage (sync)::

        frontend = ScoringFrontend(model, FrontendConfig(n_workers=2))
        frontend.start()
        tickets = [frontend.submit(row) for row in rows]
        results = [t.result(timeout=30) for t in tickets]
        frontend.stop()

    Usage (asyncio)::

        async with contextlib.aclosing(...)  # or try/finally frontend.stop()
            result = await frontend.score(row)

    Args:
        model: The initial champion scorer (published as generation 0).
        config: Operating knobs.
        telemetry: Optional externally-owned telemetry sink.
        drift_guard: Optional :class:`DriftGuard` observed over admitted
            rows (the closed-loop controller watches its trip).
        version: Optional registry version id of ``model`` (telemetry).
    """

    def __init__(
        self,
        model: ScoringModel,
        config: FrontendConfig | None = None,
        telemetry: FrontendTelemetry | None = None,
        drift_guard: DriftGuard | None = None,
        version: str | None = None,
    ):
        self.config = config or FrontendConfig()
        self.telemetry = telemetry or FrontendTelemetry()
        self.drift_guard = drift_guard
        self._publisher = ModelPublisher()
        self._initial_model = model
        self._initial_version = version
        self._n_features = len(model.encoder.model.binner.bin_edges_)
        self._context = multiprocessing.get_context(
            self.config.start_method or default_start_method()
        )
        self._workers: list[_WorkerHandle] = []
        self._response_q = None
        self._collector: threading.Thread | None = None
        self._lock = threading.Lock()
        self._pending: dict[int, dict] = {}
        self._request_ids = itertools.count()
        self._rr = itertools.count()
        self._started = False
        self._stopping = False

    # ----------------------------------------------------------- lifecycle

    @property
    def generation(self) -> int:
        """The generation new admissions are stamped with."""
        return self._publisher.latest.generation

    @property
    def worker_pids(self) -> list[int]:
        """PIDs of the current worker processes (fault-injection hook)."""
        return [w.process.pid for w in self._workers]

    def start(self) -> "ScoringFrontend":
        """Publish generation 0 and spawn + handshake the workers."""
        if self._started:
            raise RuntimeError("frontend already started")
        self._started = True
        self._publisher.publish(self._initial_model,
                                version=self._initial_version)
        self._response_q = self._context.Queue()
        for worker_id in range(self.config.n_workers):
            self._workers.append(self._spawn(worker_id))
        self._await_ready()
        self._collector = threading.Thread(
            target=self._collect_loop, name="frontend-collector", daemon=True
        )
        self._collector.start()
        return self

    def _spawn(self, worker_id: int) -> _WorkerHandle:
        request_q = self._context.Queue()
        control_q = self._context.Queue()
        initial = [
            (g, self._publisher.get(g).spec)
            for g in self._publisher.generations
        ]
        process = self._context.Process(
            target=_worker_main,
            args=(worker_id, request_q, self._response_q, control_q,
                  initial, self.config.max_batch_size,
                  self.config.poll_timeout_s),
            daemon=True,
        )
        process.start()
        return _WorkerHandle(worker_id, process, request_q, control_q)

    def _await_ready(self) -> None:
        deadline = time.monotonic() + self.config.ready_timeout_s
        pending = {w.worker_id for w in self._workers if not w.ready}
        while pending and time.monotonic() < deadline:
            try:
                message = self._response_q.get(timeout=0.1)
            except queue_mod.Empty:
                continue
            if message[0] == "ready":
                pending.discard(message[1])
                for worker in self._workers:
                    if worker.worker_id == message[1]:
                        worker.ready = True
        if pending:
            self.stop()
            raise RuntimeError(
                f"workers {sorted(pending)} failed to start within "
                f"{self.config.ready_timeout_s}s"
            )

    def stop(self) -> None:
        """Stop workers, resolve leftovers with an error, free the packs."""
        if self._stopping:
            return
        self._stopping = True
        for worker in self._workers:
            try:
                worker.control_q.put(("stop",))
            except Exception:  # noqa: BLE001 - queue may be torn down
                pass
        if self._collector is not None:
            self._collector.join(timeout=5.0)
        for worker in self._workers:
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=2.0)
        with self._lock:
            leftovers = list(self._pending.values())
            self._pending.clear()
        for entry in leftovers:
            self._resolve_future(
                entry["future"],
                FrontendResult(status=ERROR,
                               context="frontend stopped before scoring"),
            )
        for worker in self._workers:
            self._discard_queues(worker)
        self._publisher.close()

    @staticmethod
    def _discard_queues(worker: "_WorkerHandle") -> None:
        """Release a handle's queues without joining their feeder threads.

        A killed (or stopped) worker leaves its request pipe full; the
        queue's background feeder blocks in ``send`` and multiprocessing's
        atexit hook would join it forever.  ``cancel_join_thread`` breaks
        that dependency so abandoning the queue is safe.
        """
        for q in (worker.request_q, worker.control_q):
            try:
                q.cancel_join_thread()
                q.close()
            except Exception:  # noqa: BLE001 - already torn down
                pass

    def __enter__(self) -> "ScoringFrontend":
        return self.start() if not self._started else self

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------ admission

    def submit(self, row: np.ndarray) -> FrontendTicket:
        """Admit one request (or refuse it *now*); never blocks on scoring.

        Returns:
            A ticket.  Refusals — queue overflow (:data:`OVERLOADED`) and
            malformed rows — come back already resolved; nothing is
            silently dropped.
        """
        if not self._started or self._stopping:
            raise RuntimeError("frontend is not running")
        request_id = next(self._request_ids)
        future: Future = Future()
        ticket = FrontendTicket(request_id, future)

        try:
            row = np.asarray(row, dtype=np.float64)
            if row.ndim != 1 or row.shape[0] != self._n_features:
                raise ValueError(
                    f"expected a ({self._n_features},) feature row, "
                    f"got shape {row.shape}"
                )
        except Exception as exc:  # noqa: BLE001 - refusal with context
            self.telemetry.record_refused()
            future.set_result(
                FrontendResult(status=ERROR,
                               context=f"malformed request: {exc}")
            )
            return ticket

        with self._lock:
            if len(self._pending) >= self.config.max_queue:
                self.telemetry.record_shed()
                future.set_result(
                    FrontendResult(
                        status=OVERLOADED,
                        context=(
                            f"admission queue full "
                            f"({self.config.max_queue} outstanding)"
                        ),
                    )
                )
                return ticket
            generation = self.generation
            entry = {
                "future": future,
                "row": row,
                "generation": generation,
                "worker_id": -1,
                "t_submit": time.perf_counter(),
            }
            self._pending[request_id] = entry
            self.telemetry.record_admitted()
        if self.drift_guard is not None:
            self.drift_guard.observe(row[None, :])
        self._dispatch(request_id, entry)
        return ticket

    def _dispatch(self, request_id: int, entry: dict,
                  requeue: bool = False) -> None:
        """Route one admitted request to a live worker (round-robin)."""
        alive = [w for w in self._workers if w.alive]
        if not alive:
            with self._lock:
                self._pending.pop(request_id, None)
            self._resolve_future(
                entry["future"],
                FrontendResult(
                    status=ERROR,
                    context=("no live scoring workers"
                             + (" (worker died mid-batch)" if requeue
                                else "")),
                ),
            )
            return
        worker = alive[next(self._rr) % len(alive)]
        entry["worker_id"] = worker.worker_id
        worker.request_q.put(
            (request_id, entry["row"], entry["generation"])
        )

    async def score(self, row: np.ndarray) -> FrontendResult:
        """Asyncio request path: admit and await the result."""
        return await self.submit(row).wait()

    async def score_many(self, rows: np.ndarray) -> list[FrontendResult]:
        """Admit a stream of rows and await all results (asyncio)."""
        tickets = [self.submit(row) for row in rows]
        return list(await asyncio.gather(*(t.wait() for t in tickets)))

    def score_stream(self, rows: np.ndarray,
                     timeout: float | None = 60.0) -> list[FrontendResult]:
        """Synchronous convenience: submit all rows, wait for all results."""
        tickets = [self.submit(row) for row in rows]
        return [t.result(timeout) for t in tickets]

    # ---------------------------------------------------------- model swap

    def publish(self, model: ScoringModel,
                version: str | None = None) -> int:
        """Atomically swap in a new model; returns the new generation.

        The new generation is published to shared memory first, then
        announced to every worker; admissions observe it only after the
        pack exists, so no request can ever reference a half-written
        model.  Requests admitted before this call keep their old
        generation stamp and score on the old arrays.
        """
        if not self._started or self._stopping:
            raise RuntimeError("frontend is not running")
        published = self._publisher.publish(model, version=version)
        for worker in self._workers:
            if worker.alive:
                worker.control_q.put(
                    ("load", published.generation, published.spec)
                )
        self.telemetry.record_swap()
        return published.generation

    def retire(self, generation: int) -> None:
        """Dispose an old generation's shared block (see ModelPublisher)."""
        self._publisher.retire(generation)

    # ------------------------------------------------- fault-injection hooks

    def pause_workers(self) -> None:
        """Suspend batch consumption in every worker (tests/draining)."""
        for worker in self._workers:
            if worker.alive:
                worker.control_q.put(("pause",))

    def resume_workers(self) -> None:
        """Resume batch consumption."""
        for worker in self._workers:
            if worker.alive:
                worker.control_q.put(("resume",))

    # ------------------------------------------------------------ collector

    def _collect_loop(self) -> None:
        while not self._stopping:
            try:
                message = self._response_q.get(timeout=0.05)
            except queue_mod.Empty:
                self._reap_dead_workers()
                continue
            except (EOFError, OSError):
                return
            if message[0] == "results":
                for req_id, status, value, generation in message[2]:
                    self._resolve(req_id, status, value, generation)
            elif message[0] == "ready":
                for worker in self._workers:
                    if worker.worker_id == message[1]:
                        worker.ready = True

    def _resolve(self, request_id: int, status: str, value,
                 generation: int) -> None:
        with self._lock:
            entry = self._pending.pop(request_id, None)
        if entry is None:  # duplicate (requeued request answered twice)
            return
        latency = time.perf_counter() - entry["t_submit"]
        self.telemetry.record_request(latency)
        if status == OK:
            result = FrontendResult(status=OK, score=float(value),
                                    generation=generation)
        else:
            self.telemetry.record_request_error()
            result = FrontendResult(status=ERROR, context=str(value),
                                    generation=generation)
        self._resolve_future(entry["future"], result)

    @staticmethod
    def _resolve_future(future: Future, result: FrontendResult) -> None:
        if not future.done():
            future.set_result(result)

    def _reap_dead_workers(self) -> None:
        """Requeue (or fail, with context) a dead worker's in-flight work."""
        for index, worker in enumerate(self._workers):
            if worker.alive or self._stopping:
                continue
            self.telemetry.record_worker_death()
            with self._lock:
                orphans = [
                    (req_id, entry)
                    for req_id, entry in self._pending.items()
                    if entry["worker_id"] == worker.worker_id
                ]
            # Respawn first so capacity survives and orphans can land on
            # the replacement; the old request queue is abandoned (its
            # unconsumed items are exactly the orphans being re-sent).
            replacement = self._spawn(worker.worker_id)
            self._workers[index] = replacement
            # The dead worker will never drain its queues: detach their
            # feeder threads or interpreter shutdown joins them forever.
            self._discard_queues(worker)
            if orphans:
                self.telemetry.record_requeued(len(orphans))
            for req_id, entry in orphans:
                entry["context"] = (
                    f"worker {worker.worker_id} died mid-batch; requeued"
                )
                self._dispatch(req_id, entry, requeue=True)

    # ------------------------------------------------------------ reporting

    def snapshot(self) -> dict:
        """JSON-compatible frontend state (telemetry + workers + guard)."""
        payload = {
            "n_workers": self.config.n_workers,
            "max_queue": self.config.max_queue,
            "generation": (self._publisher.latest.generation
                           if self._publisher.generations else -1),
            "workers_alive": sum(1 for w in self._workers if w.alive),
            "pending": len(self._pending),
            "telemetry": self.telemetry.snapshot(),
        }
        if self.drift_guard is not None:
            payload["drift_guard"] = self.drift_guard.snapshot()
        return payload
