"""Multi-worker scoring front-end: admission control, fan-out, recovery.

:class:`ScoringFrontend` is the request layer in front of N scoring
*worker processes*.  The parent publishes model artifacts once into shared
memory (:mod:`repro.serve.shm_publish`) and workers attach zero-copy
views, each running its own :class:`~repro.serve.service.ScoringService`
(micro-batcher included) over the shared arrays.  The parent side is
asyncio-friendly — :meth:`ScoringFrontend.score` awaits a result — but
every primitive is also callable synchronously through
:class:`FrontendTicket`, so benches, the CLI and tests need no event loop.

Operating contract:

* **Backpressure, never silent drops.**  Admission is bounded by
  ``max_queue`` outstanding requests; request ``max_queue + 1`` resolves
  *immediately* to an explicit 503-style :data:`OVERLOADED` result and is
  counted in telemetry.  Nothing is ever dropped without a result.
* **Generation-stamped scoring.**  Every admitted request carries the
  model generation that was live at admission.  Publishing a new model is
  an atomic pack-swap: a fresh immutable generation, loaded by workers on
  their next control poll — requests admitted before the swap score on
  their old generation, bit-identically.
* **Fault isolation.**  A worker death mid-batch re-dispatches that
  worker's in-flight requests to surviving workers (or resolves them with
  an error naming the dead worker when none survive) and respawns the
  worker.  A poison row (non-finite values, wrong width) fails *only its
  own request* — the rest of the micro-batch is rescored row-by-row.
* **Bit-identity.**  Scores are exactly single-process
  ``ScoringService.predict_proba`` for every worker count: batching and
  fan-out change when/where a score is computed, never its value.
* **Observable live.**  With ``FrontendConfig.live_metrics`` on, every
  worker publishes its :class:`~repro.serve.telemetry.ServingTelemetry`
  into a per-worker shared-memory slab row
  (:class:`~repro.obs.live.MetricsSlab`, seqlock torn-free reads) and
  the parent aggregates, monitors and exposes the merged state — see
  :meth:`ScoringFrontend.live_snapshot` and ``docs/serving.md``.  The
  plane never touches a score: scoring is bit-identical with it on or
  off (asserted in tests), and the disabled path adds nothing.
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing
import os
import queue as queue_mod
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass

import numpy as np

from repro.obs.live.slab import (
    SERVING_SLAB_LAYOUT,
    MetricsAggregator,
    MetricsSlab,
)
from repro.parallel.engine import default_start_method
from repro.parallel.shared import PackSpec
from repro.persist.artifacts import ScoringModel
from repro.serve.degradation import DriftGuard
from repro.serve.shm_publish import ModelPublisher, attach_model
from repro.serve.telemetry import FrontendTelemetry, ServingTelemetry

__all__ = [
    "FrontendConfig",
    "FrontendResult",
    "FrontendTicket",
    "ScoringFrontend",
    "OK",
    "OVERLOADED",
    "ERROR",
]

#: Result statuses.
OK = "ok"
OVERLOADED = "overloaded"
ERROR = "error"


@dataclass(frozen=True)
class FrontendConfig:
    """Operating knobs of one :class:`ScoringFrontend`.

    Attributes:
        n_workers: Scoring worker process count.
        max_batch_size: Per-worker micro-batch auto-flush threshold.
        max_queue: Admission bound — outstanding (admitted, unresolved)
            requests; the ``max_queue + 1``-th submit sheds.
        poll_timeout_s: Worker block time waiting for the first request of
            a batch (also the cadence of control-message polling).
        start_method: Worker start method; ``None`` picks the platform
            default (``fork`` where available).
        ready_timeout_s: Parent-side wait for worker startup handshakes.
        live_metrics: Allocate the shared-memory metrics slab and have
            each worker publish its service telemetry after every batch
            (plus heartbeats while idle).  Off by default — the disabled
            path is byte-for-byte the PR 7 behaviour.
        live_poll_interval_s: Parent collector cadence for aggregating
            slabs, feeding the SLO tracker and evaluating health.
        slo_latency_bound_s: Request latency above this bound counts
            against the latency SLO (from histogram bucket deltas, so
            the bound is effectively rounded up to a bucket edge).
        liveness_timeout_s: Slab heartbeat age beyond which a worker is
            reported stale.
    """

    n_workers: int = 2
    max_batch_size: int = 64
    max_queue: int = 1024
    poll_timeout_s: float = 0.02
    start_method: str | None = None
    ready_timeout_s: float = 30.0
    live_metrics: bool = False
    live_poll_interval_s: float = 0.25
    slo_latency_bound_s: float = 0.3
    liveness_timeout_s: float = 5.0

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.live_poll_interval_s <= 0:
            raise ValueError("live_poll_interval_s must be positive")


@dataclass(frozen=True)
class FrontendResult:
    """Terminal outcome of one scoring request.

    Attributes:
        status: ``"ok"``, ``"overloaded"`` or ``"error"``.
        score: The default probability (``ok`` only).
        generation: Model generation that scored the request (``ok``
            only; ``-1`` otherwise).
        context: Human-readable failure context (non-``ok`` only).
    """

    status: str
    score: float = float("nan")
    generation: int = -1
    context: str = ""

    @property
    def ok(self) -> bool:
        return self.status == OK


class FrontendTicket:
    """Handle to one admitted (or immediately refused) request."""

    __slots__ = ("request_id", "_future")

    def __init__(self, request_id: int, future: Future):
        self.request_id = request_id
        self._future = future

    @property
    def done(self) -> bool:
        return self._future.done()

    def result(self, timeout: float | None = None) -> FrontendResult:
        """Block until the request resolves (sync callers)."""
        return self._future.result(timeout)

    async def wait(self) -> FrontendResult:
        """Await resolution (asyncio callers)."""
        return await asyncio.wrap_future(self._future)


# --------------------------------------------------------------- worker side


def _resolve_batch(services: dict, batch: list) -> list[tuple]:
    """Score one drained batch, grouped by generation, poison-isolated.

    Returns response tuples ``(req_id, status, value, generation)`` in
    the same order requests were drained.
    """
    from repro.serve.service import ScoringService  # noqa: F401 (doc link)

    responses: dict[int, tuple] = {}
    by_generation: dict[int, list[tuple[int, np.ndarray]]] = {}
    for req_id, row, generation in batch:
        by_generation.setdefault(generation, []).append((req_id, row))
    for generation, members in by_generation.items():
        service = services.get(generation)
        if service is None:
            for req_id, _ in members:
                responses[req_id] = (
                    req_id, ERROR,
                    f"generation {generation} is not loaded in this worker",
                    generation,
                )
            continue
        try:
            tickets = [service.submit(row) for _, row in members]
            service.flush()
            for (req_id, _), ticket in zip(members, tickets):
                responses[req_id] = (req_id, OK, ticket.score, generation)
        except Exception:
            # Poison isolation: rescore row-by-row so the blast radius is
            # exactly the failing request(s).
            for req_id, row in members:
                try:
                    score = float(service.score_batch(row[None, :])[0])
                    responses[req_id] = (req_id, OK, score, generation)
                except Exception as exc:  # noqa: BLE001 - shipped as context
                    responses[req_id] = (
                        req_id, ERROR,
                        f"request {req_id} failed scoring: {exc!r}",
                        generation,
                    )
    return [responses[req_id] for req_id, _, __ in batch]


def _worker_main(worker_id: int, request_q, response_q, control_q,
                 initial: list[tuple[int, PackSpec]],
                 max_batch_size: int, poll_timeout_s: float,
                 slab_spec: PackSpec | None = None) -> None:
    """One scoring worker: attach shared models, batch, score, respond.

    Module-level (picklable) so it runs under ``fork`` and ``spawn``.

    With ``slab_spec``, the worker shares one
    :class:`~repro.serve.telemetry.ServingTelemetry` across all its
    per-generation services (one slab row per *worker*, not per model)
    and publishes absolute totals into its row after every scored batch;
    idle polls refresh only the heartbeat word.
    """
    from repro.serve.service import ScoringService, ServiceConfig

    packs: dict[int, object] = {}
    services: dict[int, ScoringService] = {}
    slab = slab_writer = telemetry = None
    if slab_spec is not None:
        slab = MetricsSlab.attach(slab_spec)
        slab_writer = slab.writer(worker_id)
        telemetry = ServingTelemetry()

    def load(generation: int, spec: PackSpec) -> None:
        if generation in services:
            return
        model, pack = attach_model(spec)
        packs[generation] = pack
        services[generation] = ScoringService(
            model, config=ServiceConfig(max_batch_size=max_batch_size),
            telemetry=telemetry,
        )

    for generation, spec in initial:
        load(generation, spec)
    response_q.put(("ready", worker_id, os.getpid()))
    if slab_writer is not None:
        slab_writer.publish_telemetry(telemetry)  # row live before traffic

    paused = False
    running = True
    while running:
        while True:  # control first: swaps/pauses beat data
            try:
                message = control_q.get_nowait()
            except queue_mod.Empty:
                break
            kind = message[0]
            if kind == "stop":
                running = False
            elif kind == "load":
                load(message[1], message[2])
            elif kind == "pause":
                paused = True
            elif kind == "resume":
                paused = False
        if not running:
            break
        if paused:
            time.sleep(poll_timeout_s)
            continue
        try:
            first = request_q.get(timeout=poll_timeout_s)
        except queue_mod.Empty:
            if slab_writer is not None:
                slab_writer.heartbeat()
            continue
        batch = [first]
        while len(batch) < max_batch_size:
            try:
                batch.append(request_q.get_nowait())
            except queue_mod.Empty:
                break
        # A swap racing admission: requests can carry a generation whose
        # "load" control message has not been polled yet.  Drain control
        # until every requested generation is resolvable (bounded wait).
        deadline = time.monotonic() + 5.0
        while (any(gen not in services for _, __, gen in batch)
               and time.monotonic() < deadline):
            try:
                message = control_q.get(timeout=0.01)
            except queue_mod.Empty:
                continue
            if message[0] == "load":
                load(message[1], message[2])
            elif message[0] == "stop":
                running = False
                break
        response_q.put(("results", worker_id, _resolve_batch(services, batch)))
        if slab_writer is not None:
            slab_writer.publish_telemetry(telemetry)

    for pack in packs.values():
        pack.close()
    if slab is not None:
        slab_writer.publish_telemetry(telemetry)  # final absolute totals
        slab.close()


# --------------------------------------------------------------- parent side


class _WorkerHandle:
    """Parent-side state of one worker process."""

    def __init__(self, worker_id: int, process, request_q, control_q):
        self.worker_id = worker_id
        self.process = process
        self.request_q = request_q
        self.control_q = control_q
        self.ready = False

    @property
    def alive(self) -> bool:
        return self.process.is_alive()


class ScoringFrontend:
    """Bounded-queue scoring front door over N shared-memory workers.

    Usage (sync)::

        frontend = ScoringFrontend(model, FrontendConfig(n_workers=2))
        frontend.start()
        tickets = [frontend.submit(row) for row in rows]
        results = [t.result(timeout=30) for t in tickets]
        frontend.stop()

    Usage (asyncio)::

        async with contextlib.aclosing(...)  # or try/finally frontend.stop()
            result = await frontend.score(row)

    Args:
        model: The initial champion scorer (published as generation 0).
        config: Operating knobs.
        telemetry: Optional externally-owned telemetry sink.
        drift_guard: Optional :class:`DriftGuard` observed over admitted
            rows (the closed-loop controller watches its trip).
        version: Optional registry version id of ``model`` (telemetry).
        score_drift: Optional :class:`~repro.obs.live.ScoreDriftMonitor`
            fed every resolved OK score (with its admission province).
        calibration: Optional :class:`~repro.obs.live.CalibrationMonitor`
            fed every resolved OK score.
        slo_tracker: Optional :class:`~repro.obs.live.SLOTracker`; the
            collector feeds objectives named ``"admission"`` (bad =
            sheds) and ``"latency"`` (bad = resolutions slower than
            ``config.slo_latency_bound_s``) from telemetry deltas each
            live tick, when those objectives are configured.
        health_monitor: Optional :class:`~repro.obs.live.HealthMonitor`
            evaluated each live tick with the signals described in
            ``docs/serving.md`` (score_psi, feature_psi, mean_shift,
            slo_burn, stale_workers).
    """

    def __init__(
        self,
        model: ScoringModel,
        config: FrontendConfig | None = None,
        telemetry: FrontendTelemetry | None = None,
        drift_guard: DriftGuard | None = None,
        version: str | None = None,
        score_drift=None,
        calibration=None,
        slo_tracker=None,
        health_monitor=None,
    ):
        self.config = config or FrontendConfig()
        self.telemetry = telemetry or FrontendTelemetry()
        self.drift_guard = drift_guard
        self.score_drift = score_drift
        self.calibration = calibration
        self.slo_tracker = slo_tracker
        self.health_monitor = health_monitor
        self._slab: MetricsSlab | None = None
        self._aggregator: MetricsAggregator | None = None
        self._final_workers: dict | None = None
        self._last_tick = 0.0
        self._last_frontend_sample: dict | None = None
        self._publisher = ModelPublisher()
        self._initial_model = model
        self._initial_version = version
        self._n_features = len(model.encoder.model.binner.bin_edges_)
        self._context = multiprocessing.get_context(
            self.config.start_method or default_start_method()
        )
        self._workers: list[_WorkerHandle] = []
        self._response_q = None
        self._collector: threading.Thread | None = None
        self._lock = threading.Lock()
        self._pending: dict[int, dict] = {}
        self._request_ids = itertools.count()
        self._rr = itertools.count()
        self._started = False
        self._stopping = False

    # ----------------------------------------------------------- lifecycle

    @property
    def generation(self) -> int:
        """The generation new admissions are stamped with."""
        return self._publisher.latest.generation

    @property
    def worker_pids(self) -> list[int]:
        """PIDs of the current worker processes (fault-injection hook)."""
        return [w.process.pid for w in self._workers]

    def start(self) -> "ScoringFrontend":
        """Publish generation 0 and spawn + handshake the workers."""
        if self._started:
            raise RuntimeError("frontend already started")
        self._started = True
        self._publisher.publish(self._initial_model,
                                version=self._initial_version)
        if self.config.live_metrics:
            self._slab = MetricsSlab.allocate(
                SERVING_SLAB_LAYOUT, n_workers=self.config.n_workers
            )
            self._aggregator = MetricsAggregator(
                self._slab,
                liveness_timeout_s=self.config.liveness_timeout_s,
            )
        self._response_q = self._context.Queue()
        for worker_id in range(self.config.n_workers):
            self._workers.append(self._spawn(worker_id))
        self._await_ready()
        self._collector = threading.Thread(
            target=self._collect_loop, name="frontend-collector", daemon=True
        )
        self._collector.start()
        return self

    def _spawn(self, worker_id: int) -> _WorkerHandle:
        request_q = self._context.Queue()
        control_q = self._context.Queue()
        initial = [
            (g, self._publisher.get(g).spec)
            for g in self._publisher.generations
        ]
        process = self._context.Process(
            target=_worker_main,
            args=(worker_id, request_q, self._response_q, control_q,
                  initial, self.config.max_batch_size,
                  self.config.poll_timeout_s,
                  self._slab.spec if self._slab is not None else None),
            daemon=True,
        )
        process.start()
        return _WorkerHandle(worker_id, process, request_q, control_q)

    def _await_ready(self) -> None:
        deadline = time.monotonic() + self.config.ready_timeout_s
        pending = {w.worker_id for w in self._workers if not w.ready}
        while pending and time.monotonic() < deadline:
            try:
                message = self._response_q.get(timeout=0.1)
            except queue_mod.Empty:
                continue
            if message[0] == "ready":
                pending.discard(message[1])
                for worker in self._workers:
                    if worker.worker_id == message[1]:
                        worker.ready = True
        if pending:
            self.stop()
            raise RuntimeError(
                f"workers {sorted(pending)} failed to start within "
                f"{self.config.ready_timeout_s}s"
            )

    def stop(self) -> None:
        """Stop workers, resolve leftovers with an error, free the packs."""
        if self._stopping:
            return
        self._stopping = True
        for worker in self._workers:
            try:
                worker.control_q.put(("stop",))
            except Exception:  # noqa: BLE001 - queue may be torn down
                pass
        if self._collector is not None:
            self._collector.join(timeout=5.0)
        for worker in self._workers:
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=2.0)
        with self._lock:
            leftovers = list(self._pending.values())
            self._pending.clear()
        for entry in leftovers:
            self._resolve_future(
                entry["future"],
                FrontendResult(status=ERROR,
                               context="frontend stopped before scoring"),
            )
        for worker in self._workers:
            self._discard_queues(worker)
        if self._slab is not None:
            # Keep the final merged view readable after the slab is gone.
            self._final_workers = self._aggregator.aggregate()
            self._slab.dispose()
            self._slab = None
            self._aggregator = None
        self._publisher.close()

    @staticmethod
    def _discard_queues(worker: "_WorkerHandle") -> None:
        """Release a handle's queues without joining their feeder threads.

        A killed (or stopped) worker leaves its request pipe full; the
        queue's background feeder blocks in ``send`` and multiprocessing's
        atexit hook would join it forever.  ``cancel_join_thread`` breaks
        that dependency so abandoning the queue is safe.
        """
        for q in (worker.request_q, worker.control_q):
            try:
                q.cancel_join_thread()
                q.close()
            except Exception:  # noqa: BLE001 - already torn down
                pass

    def __enter__(self) -> "ScoringFrontend":
        return self.start() if not self._started else self

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------ admission

    def submit(self, row: np.ndarray,
               province: str | None = None) -> FrontendTicket:
        """Admit one request (or refuse it *now*); never blocks on scoring.

        Args:
            row: One feature row.
            province: Optional environment tag for the per-province
                quality monitors; stays parent-side (never shipped to
                workers) and has no effect on the score.

        Returns:
            A ticket.  Refusals — queue overflow (:data:`OVERLOADED`) and
            malformed rows — come back already resolved; nothing is
            silently dropped.
        """
        if not self._started or self._stopping:
            raise RuntimeError("frontend is not running")
        request_id = next(self._request_ids)
        future: Future = Future()
        ticket = FrontendTicket(request_id, future)

        try:
            row = np.asarray(row, dtype=np.float64)
            if row.ndim != 1 or row.shape[0] != self._n_features:
                raise ValueError(
                    f"expected a ({self._n_features},) feature row, "
                    f"got shape {row.shape}"
                )
        except Exception as exc:  # noqa: BLE001 - refusal with context
            self.telemetry.record_refused()
            future.set_result(
                FrontendResult(status=ERROR,
                               context=f"malformed request: {exc}")
            )
            return ticket

        with self._lock:
            if len(self._pending) >= self.config.max_queue:
                self.telemetry.record_shed()
                future.set_result(
                    FrontendResult(
                        status=OVERLOADED,
                        context=(
                            f"admission queue full "
                            f"({self.config.max_queue} outstanding)"
                        ),
                    )
                )
                return ticket
            generation = self.generation
            entry = {
                "future": future,
                "row": row,
                "generation": generation,
                "worker_id": -1,
                "t_submit": time.perf_counter(),
                "province": province,
            }
            self._pending[request_id] = entry
            self.telemetry.record_admitted()
        if self.drift_guard is not None:
            self.drift_guard.observe(row[None, :])
        self._dispatch(request_id, entry)
        return ticket

    def _dispatch(self, request_id: int, entry: dict,
                  requeue: bool = False) -> None:
        """Route one admitted request to a live worker (round-robin)."""
        alive = [w for w in self._workers if w.alive]
        if not alive:
            with self._lock:
                self._pending.pop(request_id, None)
            self._resolve_future(
                entry["future"],
                FrontendResult(
                    status=ERROR,
                    context=("no live scoring workers"
                             + (" (worker died mid-batch)" if requeue
                                else "")),
                ),
            )
            return
        worker = alive[next(self._rr) % len(alive)]
        entry["worker_id"] = worker.worker_id
        worker.request_q.put(
            (request_id, entry["row"], entry["generation"])
        )

    async def score(self, row: np.ndarray) -> FrontendResult:
        """Asyncio request path: admit and await the result."""
        return await self.submit(row).wait()

    async def score_many(self, rows: np.ndarray) -> list[FrontendResult]:
        """Admit a stream of rows and await all results (asyncio)."""
        tickets = [self.submit(row) for row in rows]
        return list(await asyncio.gather(*(t.wait() for t in tickets)))

    def score_stream(self, rows: np.ndarray,
                     timeout: float | None = 60.0,
                     provinces=None) -> list[FrontendResult]:
        """Synchronous convenience: submit all rows, wait for all results.

        Args:
            rows: ``(n, d)`` feature matrix.
            timeout: Per-result wait bound.
            provinces: Optional per-row environment tags (len n) for the
                quality monitors.
        """
        if provinces is None:
            tickets = [self.submit(row) for row in rows]
        else:
            tickets = [self.submit(row, province=str(p))
                       for row, p in zip(rows, provinces)]
        return [t.result(timeout) for t in tickets]

    # ---------------------------------------------------------- model swap

    def publish(self, model: ScoringModel,
                version: str | None = None) -> int:
        """Atomically swap in a new model; returns the new generation.

        The new generation is published to shared memory first, then
        announced to every worker; admissions observe it only after the
        pack exists, so no request can ever reference a half-written
        model.  Requests admitted before this call keep their old
        generation stamp and score on the old arrays.
        """
        if not self._started or self._stopping:
            raise RuntimeError("frontend is not running")
        published = self._publisher.publish(model, version=version)
        for worker in self._workers:
            if worker.alive:
                worker.control_q.put(
                    ("load", published.generation, published.spec)
                )
        self.telemetry.record_swap()
        return published.generation

    def retire(self, generation: int) -> None:
        """Dispose an old generation's shared block (see ModelPublisher)."""
        self._publisher.retire(generation)

    # ------------------------------------------------- fault-injection hooks

    def pause_workers(self) -> None:
        """Suspend batch consumption in every worker (tests/draining)."""
        for worker in self._workers:
            if worker.alive:
                worker.control_q.put(("pause",))

    def resume_workers(self) -> None:
        """Resume batch consumption."""
        for worker in self._workers:
            if worker.alive:
                worker.control_q.put(("resume",))

    # ------------------------------------------------------------ collector

    def _collect_loop(self) -> None:
        while not self._stopping:
            try:
                message = self._response_q.get(timeout=0.05)
            except queue_mod.Empty:
                self._reap_dead_workers()
                self._live_tick()
                continue
            except (EOFError, OSError):
                return
            if message[0] == "results":
                for req_id, status, value, generation in message[2]:
                    self._resolve(req_id, status, value, generation)
            elif message[0] == "ready":
                for worker in self._workers:
                    if worker.worker_id == message[1]:
                        worker.ready = True
            self._live_tick()

    def _resolve(self, request_id: int, status: str, value,
                 generation: int) -> None:
        with self._lock:
            entry = self._pending.pop(request_id, None)
        if entry is None:  # duplicate (requeued request answered twice)
            return
        latency = time.perf_counter() - entry["t_submit"]
        self.telemetry.record_request(latency)
        if status == OK:
            score = float(value)
            if self.score_drift is not None:
                self.score_drift.observe(score,
                                         province=entry.get("province"))
            if self.calibration is not None:
                self.calibration.observe(score)
            result = FrontendResult(status=OK, score=score,
                                    generation=generation)
        else:
            self.telemetry.record_request_error()
            result = FrontendResult(status=ERROR, context=str(value),
                                    generation=generation)
        self._resolve_future(entry["future"], result)

    @staticmethod
    def _resolve_future(future: Future, result: FrontendResult) -> None:
        if not future.done():
            future.set_result(result)

    def _reap_dead_workers(self) -> None:
        """Requeue (or fail, with context) a dead worker's in-flight work."""
        for index, worker in enumerate(self._workers):
            if worker.alive or self._stopping:
                continue
            self.telemetry.record_worker_death()
            with self._lock:
                orphans = [
                    (req_id, entry)
                    for req_id, entry in self._pending.items()
                    if entry["worker_id"] == worker.worker_id
                ]
            # Fold the dead worker's final slab row into the aggregate
            # before the replacement (fresh telemetry, restarts at zero)
            # reuses the row — its history must survive the respawn.
            if self._aggregator is not None:
                self._aggregator.absorb_retired(worker.worker_id)
            # Respawn first so capacity survives and orphans can land on
            # the replacement; the old request queue is abandoned (its
            # unconsumed items are exactly the orphans being re-sent).
            replacement = self._spawn(worker.worker_id)
            self._workers[index] = replacement
            # The dead worker will never drain its queues: detach their
            # feeder threads or interpreter shutdown joins them forever.
            self._discard_queues(worker)
            if orphans:
                self.telemetry.record_requeued(len(orphans))
            for req_id, entry in orphans:
                entry["context"] = (
                    f"worker {worker.worker_id} died mid-batch; requeued"
                )
                self._dispatch(req_id, entry, requeue=True)

    # ------------------------------------------------------------ live plane

    def _live_tick(self) -> None:
        """Feed SLO deltas and evaluate health, throttled to the interval.

        Runs on the collector thread only.  Monitor/health failures are
        contained — the live plane must never take scoring down with it.
        """
        if self.slo_tracker is None and self.health_monitor is None:
            return
        now = time.monotonic()
        if now - self._last_tick < self.config.live_poll_interval_s:
            return
        self._last_tick = now
        try:
            self._feed_slo(now)
            self._evaluate_health()
        except Exception:  # noqa: BLE001 - observability is best-effort
            pass

    @staticmethod
    def _slow_resolutions(latency_snapshot: dict, bound_s: float) -> int:
        """Resolutions slower than the bound, from histogram buckets."""
        slow = 0
        for key, count in latency_snapshot["buckets"].items():
            if key == "overflow" or float(key.removeprefix("le_")) > bound_s:
                slow += int(count)
        return slow

    def _feed_slo(self, now: float) -> None:
        if self.slo_tracker is None:
            return
        sample = self.telemetry.snapshot()
        previous = self._last_frontend_sample
        self._last_frontend_sample = sample
        if previous is None:
            return
        configured = self.slo_tracker.configs
        if "admission" in configured:
            shed = sample["shed"] - previous["shed"]
            admitted = sample["admitted"] - previous["admitted"]
            self.slo_tracker.observe("admission", good=admitted, bad=shed,
                                     now=now)
        if "latency" in configured:
            bound = self.config.slo_latency_bound_s
            slow = (self._slow_resolutions(sample["request_latency"], bound)
                    - self._slow_resolutions(previous["request_latency"],
                                             bound))
            resolved = (sample["request_latency"]["count"]
                        - previous["request_latency"]["count"])
            self.slo_tracker.observe("latency", good=resolved - slow,
                                     bad=slow, now=now)

    def _evaluate_health(self) -> None:
        if self.health_monitor is None:
            return
        signals: dict = {}
        detail: dict = {}
        if self.score_drift is not None:
            province, psi = self.score_drift.worst()
            signals["score_psi"] = psi
            if province is not None:
                detail["score_psi"] = {"province": province}
        if (self.drift_guard is not None
                and self.drift_guard.stream.n_rows_seen
                >= self.drift_guard.min_rows):
            # Same warm-up gate the guard itself applies: quantile-bin
            # PSI over a near-empty stream is noise, not a signal.
            signals["feature_psi"] = self.drift_guard.stream.max_psi()
        if self.calibration is not None and self.calibration.n_seen:
            signals["mean_shift"] = self.calibration.mean_shift()
        if self.slo_tracker is not None:
            objective, burn = self.slo_tracker.worst_burn(
                now=time.monotonic()
            )
            signals["slo_burn"] = burn
            if objective is not None:
                detail["slo_burn"] = {"objective": objective}
        if self._aggregator is not None:
            liveness = self._aggregator.liveness()
            signals["stale_workers"] = sum(
                1 for entry in liveness.values()
                if entry["reporting"] and entry["stale"]
            )
        self.health_monitor.evaluate(signals, detail=detail)

    # ------------------------------------------------------------ reporting

    def snapshot(self) -> dict:
        """JSON-compatible frontend state (telemetry + workers + guard).

        With ``live_metrics`` on, the payload additionally carries
        ``workers`` — the cross-process merge of every worker's service
        telemetry (counters summed, histograms rebuilt with
        :class:`~repro.obs.metrics.Histogram` snapshot semantics, plus
        derived ``cache_hit_rate``) — and per-worker ``liveness``.  The
        merged schema is documented in ``docs/serving.md``.
        """
        payload = {
            "n_workers": self.config.n_workers,
            "max_queue": self.config.max_queue,
            "generation": (self._publisher.latest.generation
                           if self._publisher.generations else -1),
            "workers_alive": sum(1 for w in self._workers if w.alive),
            "pending": len(self._pending),
            "telemetry": self.telemetry.snapshot(),
        }
        if self.drift_guard is not None:
            payload["drift_guard"] = self.drift_guard.snapshot()
        workers = self._workers_aggregate()
        if workers is not None:
            payload["workers"] = workers
            if self._aggregator is not None:
                payload["liveness"] = self._aggregator.liveness()
        return payload

    def _workers_aggregate(self) -> dict | None:
        """The merged per-worker service stats (None with the plane off)."""
        if self._aggregator is not None:
            workers = self._aggregator.aggregate()
        elif self._final_workers is not None:
            workers = dict(self._final_workers)
        else:
            return None
        counters = workers["counters"]
        lookups = counters["cache_hits"] + counters["cache_misses"]
        workers["cache_hit_rate"] = (
            counters["cache_hits"] / lookups if lookups else None
        )
        return workers

    def live_snapshot(self) -> dict:
        """The full live-plane payload (exposition + ``repro obs top``).

        One JSON-compatible dict per call: merged worker stats,
        front-end telemetry, per-worker liveness, monitor snapshots and
        health — the shape ``docs/observability.md`` documents and
        :class:`~repro.obs.live.MetricsExporter` serves.  Cheap and
        thread-safe (slab reads are seqlock-guarded, telemetry is
        locked), so it is called once per scrape.
        """
        payload: dict = {
            "unix": time.time(),
            "generation": (self._publisher.latest.generation
                           if self._publisher.generations else -1),
            "pending": len(self._pending),
            "workers_alive": sum(1 for w in self._workers if w.alive),
            "frontend": self.telemetry.snapshot(),
            "monitors": {},
        }
        workers = self._workers_aggregate()
        if workers is not None:
            payload["workers"] = workers
        if self._aggregator is not None:
            payload["liveness"] = self._aggregator.liveness()
        if self.drift_guard is not None:
            payload["drift_guard"] = self.drift_guard.snapshot()
        if self.score_drift is not None:
            payload["monitors"]["score_drift"] = self.score_drift.snapshot()
        if self.calibration is not None:
            payload["monitors"]["calibration"] = self.calibration.snapshot()
        if self.slo_tracker is not None:
            payload["monitors"]["slo"] = self.slo_tracker.snapshot(
                now=time.monotonic()
            )
        if self.health_monitor is not None:
            payload["health"] = self.health_monitor.snapshot()
        return payload
