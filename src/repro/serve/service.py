"""The scoring service: registry-backed, micro-batched, degradation-aware.

:class:`ScoringService` is the request-serving composition of the pieces in
this package: it loads champion/challenger :class:`ScoringModel` artifacts
(usually from a :class:`~repro.serve.registry.ModelRegistry`), coalesces
single-row requests through a :class:`~repro.serve.batching.MicroBatcher`
into one vectorized scoring call, optionally answers repeat leaf patterns
from an exact :class:`~repro.serve.cache.LeafPatternCache`, and degrades
gracefully — challenger exceptions and drift-guard trips fall back to the
champion, every fallback counted in
:class:`~repro.serve.telemetry.ServingTelemetry`.

Every path produces scores bit-identical to
``ScoringModel.predict_proba`` on the same rows: batching, caching and
fallback never change a number, only when/how it is computed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.persist.artifacts import ScoringModel
from repro.serve.batching import MicroBatcher, Ticket
from repro.serve.cache import LeafPatternCache
from repro.serve.degradation import DriftGuard
from repro.serve.registry import CHALLENGER, CHAMPION, ModelRegistry
from repro.serve.telemetry import ServingTelemetry

__all__ = ["ServiceConfig", "ScoringService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Operating knobs of one :class:`ScoringService`.

    Attributes:
        max_batch_size: Micro-batch auto-flush threshold.
        cache_size: LRU entries per model; 0 disables the score cache.
        use_challenger: Route traffic to the challenger when one is
            loaded (falling back to the champion on failure/drift).
    """

    max_batch_size: int = 256
    cache_size: int = 0
    use_challenger: bool = True

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.cache_size < 0:
            raise ValueError("cache_size must be >= 0")


class ScoringService:
    """Serves default probabilities from versioned scoring artifacts.

    Usage::

        service = ScoringService.from_registry(registry,
                                               config=ServiceConfig())
        tickets = [service.submit(row) for row in rows]
        service.flush()
        scores = [t.score for t in tickets]
        print(service.telemetry.summary())

    Args:
        champion: The known-good scorer; always loaded.
        challenger: Optional candidate scorer; used when configured, with
            champion fallback on any failure or drift-guard trip.
        config: Operating knobs (batching, caching, routing).
        drift_guard: Optional :class:`DriftGuard`; when supplied, every
            scored batch is accumulated and a tripped guard pins scoring
            to the champion.
        telemetry: Optional externally-owned telemetry sink.
    """

    def __init__(
        self,
        champion: ScoringModel,
        challenger: ScoringModel | None = None,
        config: ServiceConfig | None = None,
        drift_guard: DriftGuard | None = None,
        telemetry: ServingTelemetry | None = None,
    ):
        self.champion = champion
        self.challenger = challenger
        self.config = config or ServiceConfig()
        self.drift_guard = drift_guard
        self.telemetry = telemetry or ServingTelemetry()
        self._batcher = MicroBatcher(
            self.score_batch, max_batch_size=self.config.max_batch_size
        )
        self._caches: dict[str, LeafPatternCache] = {}
        if self.config.cache_size:
            self._caches[CHAMPION] = LeafPatternCache(self.config.cache_size)
            if challenger is not None:
                self._caches[CHALLENGER] = LeafPatternCache(
                    self.config.cache_size
                )

    @classmethod
    def from_registry(
        cls,
        registry: ModelRegistry,
        config: ServiceConfig | None = None,
        drift_guard: DriftGuard | None = None,
    ) -> "ScoringService":
        """Load the champion (and challenger, if its slot is filled).

        Args:
            registry: Registry whose champion slot must be filled.
            config: Operating knobs.
            drift_guard: Optional drift guard.
        """
        slots = registry.slots()
        challenger = (registry.load(CHALLENGER)
                      if CHALLENGER in slots else None)
        return cls(
            champion=registry.load(CHAMPION),
            challenger=challenger,
            config=config,
            drift_guard=drift_guard,
        )

    # ------------------------------------------------------------- scoring

    def score_batch(self, rows: np.ndarray) -> np.ndarray:
        """Score a batch of raw feature rows through the full service path.

        Drift-guard accumulation, challenger routing with champion
        fallback, cache lookups and telemetry all happen here; the
        micro-batcher and the single-row path both land in this method.

        Args:
            rows: ``(n, d)`` raw feature matrix.

        Returns:
            ``n`` default probabilities, bit-identical to the serving
            model's ``predict_proba`` on the same rows.
        """
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim != 2:
            raise ValueError(f"expected an (n, d) matrix, got {rows.shape}")
        start = time.perf_counter()

        slot = CHAMPION
        model = self.champion
        if (self.challenger is not None and self.config.use_challenger):
            slot, model = CHALLENGER, self.challenger

        if self.drift_guard is not None:
            decision = self.drift_guard.observe(rows)
            if decision.tripped and slot == CHALLENGER:
                slot, model = CHAMPION, self.champion
                self.telemetry.record_fallback("drift_guard")

        if slot == CHALLENGER:
            try:
                scores = self._score_with(slot, model, rows)
            except Exception:
                self.telemetry.record_fallback("challenger_error")
                slot, model = CHAMPION, self.champion
                scores = self._score_with(slot, model, rows)
        else:
            scores = self._score_with(slot, model, rows)

        self.telemetry.record_batch(rows.shape[0], time.perf_counter() - start)
        return scores

    def _score_with(self, slot: str, model: ScoringModel,
                    rows: np.ndarray) -> np.ndarray:
        """One model's scores for a batch, via the cache when enabled."""
        cache = self._caches.get(slot)
        if cache is None:
            return model.predict_proba(rows)
        leaf_matrix = model.predict_leaves(rows)
        keys = [cache.key(leaf_matrix[i]) for i in range(rows.shape[0])]
        scores = np.empty(rows.shape[0])
        missing: list[int] = []
        hits = 0
        for i, key in enumerate(keys):
            cached = cache.get(key)
            if cached is None:
                missing.append(i)
            else:
                scores[i] = cached
                hits += 1
        if missing:
            fresh = model.predict_proba_leaves(leaf_matrix[missing])
            for j, i in enumerate(missing):
                scores[i] = fresh[j]
                cache.put(keys[i], float(fresh[j]))
        self.telemetry.record_cache(hits, len(missing))
        return scores

    # -------------------------------------------------------- request path

    def submit(self, row: np.ndarray) -> Ticket:
        """Queue one request; it scores at the next (auto-)flush."""
        return self._batcher.submit(row)

    def flush(self) -> int:
        """Score every queued request now; returns the number scored."""
        return self._batcher.flush()

    @property
    def pending(self) -> int:
        """Requests queued behind the micro-batcher."""
        return self._batcher.pending

    def score_row(self, row: np.ndarray) -> float:
        """Score one row synchronously (bypasses the queue, same math)."""
        row = np.asarray(row, dtype=np.float64)
        if row.ndim != 1:
            raise ValueError(f"expected a 1-D feature row, got {row.shape}")
        start = time.perf_counter()
        score = float(self.score_batch(row[None, :])[0])
        self.telemetry.record_request(time.perf_counter() - start)
        return score

    # ----------------------------------------------------------- reporting

    def snapshot(self) -> dict:
        """Full JSON-compatible service state (telemetry + guard + caches)."""
        payload = {
            "serving": CHALLENGER if (
                self.challenger is not None and self.config.use_challenger
                and not (self.drift_guard is not None
                         and self.drift_guard.tripped)
            ) else CHAMPION,
            "telemetry": self.telemetry.snapshot(),
        }
        if self.drift_guard is not None:
            payload["drift_guard"] = self.drift_guard.snapshot()
        if self._caches:
            payload["caches"] = {
                slot: cache.snapshot()
                for slot, cache in self._caches.items()
            }
        return payload
