"""Production scoring service over persisted GBDT+LR artifacts.

The ROADMAP's north star is serving heavy traffic, not just training and
offline evaluation; this package is the request path.  It turns the JSON
artifacts :mod:`repro.persist` writes into an operated service:

* :mod:`~repro.serve.registry` — versioned model storage with
  champion/challenger slots and atomic promote/rollback (the canonical
  save/load surface; the old ``save_pipeline``/``load_pipeline`` are
  deprecation shims over it).
* :mod:`~repro.serve.batching` — micro-batching queue coalescing requests
  into one vectorized call (bit-identical scores, see
  ``BENCH_serving.json`` for the throughput win).
* :mod:`~repro.serve.cache` — exact LRU score cache keyed on leaf
  patterns.
* :mod:`~repro.serve.degradation` — streaming-PSI drift guard and
  challenger-failure fallback rules.
* :mod:`~repro.serve.telemetry` — latency histograms, throughput,
  fallback and cache counters (service- and front-end-level).
* :mod:`~repro.serve.service` — :class:`ScoringService`, the
  single-process composition.
* :mod:`~repro.serve.shm_publish` — shared-memory model publishing with
  generation counters (one physical copy, N zero-copy workers).
* :mod:`~repro.serve.frontend` — :class:`ScoringFrontend`, the
  asyncio-friendly bounded-queue layer fanning out to worker processes.
* :mod:`~repro.serve.lifecycle` — :class:`LifecycleController`, the
  closed drift → retrain → gated eval → promote/rollback loop.

The live telemetry plane (shared-memory metric slabs, online quality
monitors, health alerts, Prometheus/JSON exposition) lives in
:mod:`repro.obs.live`; the front-end wires it in when
``FrontendConfig.live_metrics`` is on.

See ``docs/serving.md`` for the registry layout, worker architecture,
backpressure semantics, degradation policy, telemetry schema and the
monitoring runbook.
"""

from repro.serve.batching import MicroBatcher, Ticket
from repro.serve.cache import LeafPatternCache
from repro.serve.degradation import DriftGuard, GuardDecision
from repro.serve.frontend import (
    FrontendConfig,
    FrontendResult,
    FrontendTicket,
    ScoringFrontend,
)
from repro.serve.lifecycle import (
    LifecycleController,
    PromotionGates,
    RetrainConfig,
)
from repro.serve.registry import (
    CHALLENGER,
    CHAMPION,
    ModelRegistry,
    ModelVersion,
)
from repro.serve.service import ScoringService, ServiceConfig
from repro.serve.shm_publish import ModelPublisher, PublishedModel
from repro.serve.telemetry import (
    FrontendTelemetry,
    LatencyHistogram,
    ServingTelemetry,
)

__all__ = [
    "CHALLENGER",
    "CHAMPION",
    "DriftGuard",
    "FrontendConfig",
    "FrontendResult",
    "FrontendTelemetry",
    "FrontendTicket",
    "GuardDecision",
    "LatencyHistogram",
    "LeafPatternCache",
    "LifecycleController",
    "MicroBatcher",
    "ModelPublisher",
    "ModelRegistry",
    "ModelVersion",
    "PromotionGates",
    "PublishedModel",
    "RetrainConfig",
    "ScoringFrontend",
    "ScoringService",
    "ServiceConfig",
    "ServingTelemetry",
    "Ticket",
]
