"""Graceful-degradation policy: drift guard + challenger fallback rules.

The paper's core motivation is that shift arrives *after* deployment
(Guangdong covariate shift, Hubei concept shift) — so the serving path must
notice drift and degrade predictably rather than score blindly.  Two
mechanisms, both falling back to the champion and both counted in
telemetry:

* **Drift guard** — a :class:`~repro.monitor.streaming.StreamingPSI`
  accumulator over incoming rows; once the rolling max per-feature PSI
  crosses the threshold, challenger scoring is suspended (the champion is
  the known-good scorer that passed offline review for the current
  traffic mix) until the guard is reset by an operator.
* **Challenger failure** — any exception from the challenger scores the
  batch with the champion instead; the error never reaches the caller.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.monitor.streaming import StreamingPSI

__all__ = ["DriftGuard", "GuardDecision"]


@dataclass(frozen=True)
class GuardDecision:
    """Outcome of one drift-guard check."""

    tripped: bool
    max_psi: float
    rows_seen: int


class DriftGuard:
    """Rolling PSI check over the rows a service scores.

    Args:
        stream: A baseline-frozen :class:`StreamingPSI` accumulator.
        psi_threshold: Max per-feature PSI above which the guard trips
            (0.25 = the conventional "major shift" reading).
        min_rows: Rows to accumulate before the guard may trip — quantile
            estimates on a handful of rows are noise.

    A tripped guard latches until :meth:`reset_trip`; the accumulated
    monitoring window is kept so an operator can inspect what drifted.
    """

    def __init__(
        self,
        stream: StreamingPSI,
        psi_threshold: float = 0.25,
        min_rows: int = 200,
    ):
        if psi_threshold <= 0:
            raise ValueError("psi_threshold must be positive")
        if min_rows < 1:
            raise ValueError("min_rows must be >= 1")
        self.stream = stream
        self.psi_threshold = psi_threshold
        self.min_rows = min_rows
        self.tripped = False

    def observe(self, rows: np.ndarray) -> GuardDecision:
        """Accumulate a batch and re-evaluate the guard.

        Args:
            rows: ``(n, d)`` raw feature rows about to be scored.

        Returns:
            The current :class:`GuardDecision` (sticky once tripped).
        """
        self.stream.update(rows)
        max_psi = self.stream.max_psi()
        if (not self.tripped and self.stream.n_rows_seen >= self.min_rows
                and max_psi > self.psi_threshold):
            self.tripped = True
        return GuardDecision(
            tripped=self.tripped,
            max_psi=max_psi,
            rows_seen=self.stream.n_rows_seen,
        )

    def reset_trip(self) -> None:
        """Un-latch the guard and restart the monitoring window."""
        self.tripped = False
        self.stream.reset()

    def snapshot(self) -> dict:
        """JSON-compatible guard state (for serving telemetry)."""
        return {
            "tripped": self.tripped,
            "psi_threshold": self.psi_threshold,
            "min_rows": self.min_rows,
            **self.stream.snapshot(),
        }
