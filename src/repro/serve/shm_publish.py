"""Publish scoring models into shared memory for zero-copy worker fan-out.

The multi-worker front-end (:mod:`repro.serve.frontend`) runs N scoring
processes against the *same* model.  Shipping the JSON artifact to every
worker would deserialise the FlatTree arrays N times; instead the parent
flattens the model's numeric state — every tree's struct-of-arrays
prediction form, the binner's bin edges, the per-tree feature subsets and
the LR-head weights — into one :class:`~repro.parallel.shared.SharedArrayPack`
and ships only the tiny :class:`~repro.parallel.shared.PackSpec`.  Workers
attach read-only views and rebuild a :class:`~repro.persist.artifacts.ScoringModel`
whose ``predict_proba`` is **bit-identical** to the original: the arrays
are copied verbatim into the block once and never transformed.

Model *versioning* is handled by :class:`ModelPublisher`: each ``publish``
allocates a fresh pack under a monotonically increasing generation
counter.  Generations are immutable once published — a swap is therefore
atomic by construction (workers attach the new generation while in-flight
batches keep scoring on their admission-time generation) and old
generations stay attachable until explicitly :meth:`~ModelPublisher.retire`-d.
"""

from __future__ import annotations

import numpy as np

from repro.gbdt.binning import QuantileBinner
from repro.gbdt.boosting import GBDTClassifier, GBDTParams
from repro.gbdt.leaf_encoder import LeafIndexEncoder
from repro.gbdt.tree import DecisionTree, FlatTree, TreeParams
from repro.models.logistic import LogisticModel
from repro.parallel.shared import (
    PackSpec,
    SharedArrayPack,
    ragged_from_arrays,
    ragged_to_arrays,
)
from repro.persist.artifacts import ScoringModel

__all__ = [
    "scoring_model_to_arrays",
    "scoring_model_from_arrays",
    "publish_model",
    "attach_model",
    "ModelPublisher",
    "PublishedModel",
]

#: Version of the shared-memory model layout (stored in the pack meta).
SHM_MODEL_FORMAT = 1

#: FlatTree fields packed per tree, in layout order.
_TREE_FIELDS = ("feature", "threshold", "left", "right", "leaf_index",
                "value")


def scoring_model_to_arrays(
    model: ScoringModel,
) -> tuple[dict[str, np.ndarray], dict]:
    """Flatten a scoring model into (arrays, meta) for a shared pack.

    Args:
        model: A restored (or freshly trained) GBDT+LR scorer.

    Returns:
        ``(arrays, meta)`` where ``arrays`` maps pack keys to the model's
        numeric state and ``meta`` is the small JSON-like table
        :func:`scoring_model_from_arrays` needs to reassemble it.
    """
    gbdt = model.encoder.model
    if not gbdt.is_fitted:
        raise ValueError("cannot publish an unfitted model")
    arrays: dict[str, np.ndarray] = {"theta": np.asarray(model.theta)}
    trees_meta = []
    for t, tree in enumerate(gbdt.trees_):
        flat = tree.flat
        for field in _TREE_FIELDS:
            arrays[f"tree/{t}/{field}"] = getattr(flat, field)
        trees_meta.append({"depth": int(flat.depth),
                           "n_leaves": int(tree.n_leaves)})
    arrays.update(ragged_to_arrays(gbdt.binner.bin_edges_, "binner",
                                   np.float64))
    arrays.update(ragged_to_arrays(gbdt.tree_feature_subsets_, "subsets",
                                   np.int64))
    params = gbdt.params
    meta = {
        "shm_model_format": SHM_MODEL_FORMAT,
        "trainer_name": model.trainer_name,
        "metadata": dict(model.metadata),
        "l2": float(model.model.l2),
        "base_score": float(gbdt.base_score_),
        "trees": trees_meta,
        "gbdt_params": {
            "n_trees": params.n_trees,
            "learning_rate": params.learning_rate,
            "max_bins": params.max_bins,
            "subsample": params.subsample,
            "colsample": params.colsample,
            "early_stopping_rounds": params.early_stopping_rounds,
            "seed": params.seed,
            "dtype": params.dtype,
        },
        "tree_params": {
            "max_leaves": params.tree.max_leaves,
            "max_depth": params.tree.max_depth,
            "min_child_samples": params.tree.min_child_samples,
            "min_child_hessian": params.tree.min_child_hessian,
            "reg_lambda": params.tree.reg_lambda,
            "min_split_gain": params.tree.min_split_gain,
        },
    }
    return arrays, meta


def scoring_model_from_arrays(
    arrays: dict[str, np.ndarray], meta: dict
) -> ScoringModel:
    """Rebuild a bit-identical :class:`ScoringModel` from pack views.

    The heavy state (tree arrays, bin edges, theta) stays zero-copy:
    every array the returned model scores with is a view into the shared
    block, so N attached workers share one physical copy.

    Args:
        arrays: Views from :meth:`SharedArrayPack.arrays` (or the raw
            dict :func:`scoring_model_to_arrays` produced).
        meta: The meta table produced alongside the arrays.
    """
    if meta.get("shm_model_format") != SHM_MODEL_FORMAT:
        raise ValueError(
            f"unsupported shared-model format "
            f"{meta.get('shm_model_format')!r}"
        )
    gbdt = GBDTClassifier(
        GBDTParams(tree=TreeParams(**meta["tree_params"]),
                   **meta["gbdt_params"])
    )
    gbdt.binner = QuantileBinner(max_bins=meta["gbdt_params"]["max_bins"])
    gbdt.binner.bin_edges_ = ragged_from_arrays(arrays, "binner")
    gbdt.base_score_ = meta["base_score"]
    gbdt.tree_feature_subsets_ = ragged_from_arrays(arrays, "subsets")
    tree_params = TreeParams(**meta["tree_params"])
    for t, tree_meta in enumerate(meta["trees"]):
        tree = DecisionTree(tree_params)
        tree._flat = FlatTree(
            **{field: arrays[f"tree/{t}/{field}"] for field in _TREE_FIELDS},
            depth=tree_meta["depth"],
        )
        tree._n_leaves = tree_meta["n_leaves"]
        gbdt.trees_.append(tree)
    theta = arrays["theta"]
    return ScoringModel(
        encoder=LeafIndexEncoder(gbdt),
        model=LogisticModel(theta.size, l2=meta["l2"]),
        theta=theta,
        trainer_name=meta["trainer_name"],
        metadata=dict(meta["metadata"]),
    )


def publish_model(model: ScoringModel, generation: int = 0,
                  version: str | None = None) -> SharedArrayPack:
    """Copy one model into a new owning shared pack (once).

    Args:
        model: The scorer to publish.
        generation: Generation counter stamped into the pack meta.
        version: Optional registry version id for observability.
    """
    arrays, meta = scoring_model_to_arrays(model)
    meta["generation"] = int(generation)
    if version is not None:
        meta["version"] = version
    return SharedArrayPack.pack(arrays, meta=meta)


def attach_model(spec: PackSpec) -> tuple[ScoringModel, SharedArrayPack]:
    """Worker-side attach: rebuild the model over zero-copy views.

    Returns:
        ``(model, pack)`` — the caller must keep ``pack`` referenced (and
        eventually ``close()`` it) for as long as the model is used; the
        model's arrays are views into the pack's mapping.
    """
    pack = SharedArrayPack.attach(spec)
    model = scoring_model_from_arrays(pack.arrays(), spec.metadata())
    return model, pack


class PublishedModel:
    """One live generation: the owning pack plus its identity."""

    def __init__(self, generation: int, pack: SharedArrayPack,
                 version: str | None):
        self.generation = generation
        self.pack = pack
        self.version = version

    @property
    def spec(self) -> PackSpec:
        return self.pack.spec


class ModelPublisher:
    """Generation-counted shared-memory model store for the front-end.

    Usage::

        publisher = ModelPublisher()
        live = publisher.publish(model)            # generation 0
        ... workers attach live.spec ...
        swapped = publisher.publish(new_model)     # generation 1 — atomic:
        ... old generation stays attachable until retire() ...
        publisher.retire(live.generation)
        publisher.close()

    Publishing never mutates an existing block, so a swap can never tear:
    a worker either scores a batch entirely on the generation it resolved
    at admission time, or entirely on a newer one it was told to load.
    """

    def __init__(self) -> None:
        self._next_generation = 0
        self._live: dict[int, PublishedModel] = {}

    def publish(self, model: ScoringModel,
                version: str | None = None) -> PublishedModel:
        """Publish one model under the next generation number."""
        generation = self._next_generation
        self._next_generation += 1
        pack = publish_model(model, generation=generation, version=version)
        published = PublishedModel(generation, pack, version)
        self._live[generation] = published
        return published

    @property
    def generations(self) -> list[int]:
        """Live (unretired) generation numbers, oldest first."""
        return sorted(self._live)

    @property
    def latest(self) -> PublishedModel:
        """The most recently published generation."""
        if not self._live:
            raise RuntimeError("nothing published yet")
        return self._live[max(self._live)]

    def get(self, generation: int) -> PublishedModel:
        """The live generation with this number."""
        return self._live[generation]

    def retire(self, generation: int) -> None:
        """Dispose one generation's block (no-op if already retired).

        Workers still holding a mapping keep scoring safely — the kernel
        reclaims the pages only once the last mapping closes — but new
        attaches of this generation become impossible.
        """
        published = self._live.pop(generation, None)
        if published is not None:
            published.pack.dispose()

    def close(self) -> None:
        """Retire every live generation."""
        for generation in list(self._live):
            self.retire(generation)

    def __enter__(self) -> "ModelPublisher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
