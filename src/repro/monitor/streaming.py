"""Streaming drift accumulation for the serving path.

:func:`repro.monitor.drift.population_stability_index` needs both windows
in memory, which a scoring service never has — monitoring rows arrive one
micro-batch at a time.  :class:`StreamingPSI` freezes the baseline side
(quantile bin edges and expected cell probabilities, computed once from the
training window) and accumulates monitoring counts incrementally, so the
current PSI per feature is available after every ``update`` at O(d · bins)
memory regardless of traffic volume.

Given the same baseline and the concatenation of all updates, the result is
*identical* to the batch function — the binning, epsilon flooring and the
index formula are shared by construction.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import LoanDataset

__all__ = ["StreamingPSI"]


class StreamingPSI:
    """Incremental per-feature Population Stability Index.

    Usage::

        stream = StreamingPSI.from_baseline(train.features,
                                            names=train.schema.names)
        for batch in request_batches:
            stream.update(batch)
            if stream.max_psi() > 0.25:
                ...  # degrade / alert

    Attributes:
        names: Feature names, one per column (generated when omitted).
        n_rows_seen: Monitoring rows accumulated so far.
    """

    def __init__(
        self,
        edges: list[np.ndarray],
        expected_probs: list[np.ndarray],
        names: list[str] | None = None,
        epsilon: float = 1e-4,
    ):
        if len(edges) != len(expected_probs):
            raise ValueError("edges and expected_probs disagree on features")
        self._edges = edges
        self._expected = expected_probs
        self._epsilon = epsilon
        self.names = list(names) if names is not None else [
            f"feature_{i}" for i in range(len(edges))
        ]
        if len(self.names) != len(edges):
            raise ValueError("one name per feature required")
        self._counts = [
            np.zeros(e.size + 1, dtype=np.int64) for e in edges
        ]
        self.n_rows_seen = 0

    @classmethod
    def from_baseline(
        cls,
        baseline: np.ndarray,
        n_bins: int = 10,
        names: list[str] | None = None,
        epsilon: float = 1e-4,
    ) -> "StreamingPSI":
        """Freeze the baseline window into bin edges + expected proportions.

        Args:
            baseline: ``(n, d)`` reference feature matrix (training window).
            n_bins: Number of quantile bins per feature.
            names: Optional feature names for reporting.
            epsilon: Floor for cell probabilities (kept finite).

        Returns:
            A streaming accumulator with zero monitoring rows.
        """
        baseline = np.asarray(baseline, dtype=np.float64)
        if baseline.ndim != 2 or baseline.shape[0] == 0:
            raise ValueError("baseline must be a non-empty 2-D matrix")
        if n_bins < 2:
            raise ValueError("n_bins must be >= 2")
        quantiles = np.linspace(0.0, 1.0, n_bins + 1)[1:-1]
        edges, expected = [], []
        for column in range(baseline.shape[1]):
            values = baseline[:, column]
            column_edges = np.unique(np.quantile(values, quantiles))
            counts = np.bincount(
                np.searchsorted(column_edges, values, side="left"),
                minlength=column_edges.size + 1,
            )
            edges.append(column_edges)
            expected.append(
                np.maximum(counts / values.size, epsilon)
            )
        return cls(edges, expected, names=names, epsilon=epsilon)

    @classmethod
    def from_dataset(cls, baseline: LoanDataset,
                     n_bins: int = 10) -> "StreamingPSI":
        """Baseline from a dataset, carrying its schema's feature names."""
        return cls.from_baseline(
            baseline.features, n_bins=n_bins, names=list(baseline.schema.names)
        )

    @property
    def n_features(self) -> int:
        return len(self._edges)

    def update(self, rows: np.ndarray) -> None:
        """Accumulate one batch of monitoring rows.

        Args:
            rows: ``(n, d)`` monitoring feature rows (``(d,)`` accepted for
                a single row).
        """
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim == 1:
            rows = rows[None, :]
        if rows.shape[1] != self.n_features:
            raise ValueError(
                f"rows have {rows.shape[1]} features, expected {self.n_features}"
            )
        for column in range(self.n_features):
            cells = np.searchsorted(self._edges[column], rows[:, column],
                                    side="left")
            self._counts[column] += np.bincount(
                cells, minlength=self._counts[column].size
            )
        self.n_rows_seen += rows.shape[0]

    def psi_per_feature(self) -> np.ndarray:
        """Current PSI per feature (zeros before any monitoring rows)."""
        if self.n_rows_seen == 0:
            return np.zeros(self.n_features)
        out = np.empty(self.n_features)
        for column in range(self.n_features):
            p = self._expected[column]
            q = np.maximum(self._counts[column] / self.n_rows_seen,
                           self._epsilon)
            out[column] = float(np.sum((p - q) * np.log(p / q)))
        return out

    def max_psi(self) -> float:
        """The worst per-feature PSI right now."""
        return float(self.psi_per_feature().max(initial=0.0))

    def snapshot(self) -> dict:
        """JSON-compatible current state (for serving telemetry)."""
        psi = self.psi_per_feature()
        return {
            "n_rows_seen": self.n_rows_seen,
            "max_psi": float(psi.max(initial=0.0)),
            "psi": {name: float(value)
                    for name, value in zip(self.names, psi)},
        }

    def reset(self) -> None:
        """Drop accumulated monitoring counts (baseline is kept)."""
        for counts in self._counts:
            counts[:] = 0
        self.n_rows_seen = 0
