"""Drift monitoring: PSI-based stability reports."""

from repro.monitor.drift import (
    ConceptDrift,
    DriftReport,
    FeatureDrift,
    concept_drift_report,
    drift_report,
    population_stability_index,
)

__all__ = [
    "ConceptDrift",
    "DriftReport",
    "FeatureDrift",
    "concept_drift_report",
    "drift_report",
    "population_stability_index",
]
