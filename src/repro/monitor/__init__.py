"""Drift monitoring: PSI-based stability reports and streaming accumulation."""

from repro.monitor.drift import (
    ConceptDrift,
    DriftReport,
    FeatureDrift,
    concept_drift_report,
    drift_report,
    population_stability_index,
)
from repro.monitor.streaming import StreamingPSI

__all__ = [
    "ConceptDrift",
    "DriftReport",
    "FeatureDrift",
    "StreamingPSI",
    "concept_drift_report",
    "drift_report",
    "population_stability_index",
]
