"""Distribution-drift monitoring: PSI and per-feature drift reports.

Section IV-B of the paper diagnoses covariate shift (province mixes,
Fig 10) and concept shift (COVID, spurious decay) between the 2016-2019
training years and the 2020 test year.  The standard industry instrument
for the covariate part is the Population Stability Index:

    PSI = Σ_b (p_b − q_b) · ln(p_b / q_b)

over a binning of each feature, with the usual reading: < 0.1 stable,
0.1-0.25 moderate shift, > 0.25 major shift.  This module computes PSI per
feature and label-shift summaries so the drift story of the paper can be
verified quantitatively on any dataset pair.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import LoanDataset

__all__ = [
    "population_stability_index",
    "FeatureDrift",
    "DriftReport",
    "drift_report",
    "ConceptDrift",
    "concept_drift_report",
]

#: Conventional PSI reading thresholds.
PSI_STABLE = 0.1
PSI_MAJOR = 0.25


def population_stability_index(
    expected: np.ndarray,
    actual: np.ndarray,
    n_bins: int = 10,
    epsilon: float = 1e-4,
) -> float:
    """PSI between a baseline sample and a monitoring sample.

    Bins are deciles of the *expected* (baseline) sample; empty cells are
    floored at ``epsilon`` so the index stays finite.

    Args:
        expected: Baseline values (e.g. a feature on the training years).
        actual: Monitoring values (e.g. the same feature on the test year).
        n_bins: Number of quantile bins.
        epsilon: Floor for cell probabilities.

    Returns:
        Non-negative PSI value.
    """
    expected = np.asarray(expected, dtype=np.float64).ravel()
    actual = np.asarray(actual, dtype=np.float64).ravel()
    if expected.size == 0 or actual.size == 0:
        raise ValueError("both samples must be non-empty")
    if n_bins < 2:
        raise ValueError("n_bins must be >= 2")
    quantiles = np.linspace(0.0, 1.0, n_bins + 1)[1:-1]
    edges = np.unique(np.quantile(expected, quantiles))
    expected_counts = np.bincount(
        np.searchsorted(edges, expected, side="left"),
        minlength=edges.size + 1,
    )
    actual_counts = np.bincount(
        np.searchsorted(edges, actual, side="left"),
        minlength=edges.size + 1,
    )
    p = np.maximum(expected_counts / expected.size, epsilon)
    q = np.maximum(actual_counts / actual.size, epsilon)
    return float(np.sum((p - q) * np.log(p / q)))


@dataclass(frozen=True)
class FeatureDrift:
    """PSI of one feature between the baseline and monitoring windows."""

    name: str
    psi: float

    @property
    def reading(self) -> str:
        """Conventional interpretation of the PSI value."""
        if self.psi < PSI_STABLE:
            return "stable"
        if self.psi < PSI_MAJOR:
            return "moderate shift"
        return "major shift"


@dataclass(frozen=True)
class DriftReport:
    """Per-feature drift between two datasets, plus label drift."""

    features: tuple[FeatureDrift, ...]
    label_psi: float
    baseline_default_rate: float
    monitoring_default_rate: float

    def worst(self, k: int = 5) -> list[FeatureDrift]:
        """The k most-drifted features."""
        return sorted(self.features, key=lambda f: -f.psi)[:k]

    def drifted(self, threshold: float = PSI_STABLE) -> list[FeatureDrift]:
        """Features whose PSI exceeds the threshold."""
        return [f for f in self.features if f.psi >= threshold]

    def max_psi(self) -> float:
        return max((f.psi for f in self.features), default=0.0)


def drift_report(
    baseline: LoanDataset,
    monitoring: LoanDataset,
    n_bins: int = 10,
) -> DriftReport:
    """PSI report between two dataset windows (e.g. 2016-19 vs 2020).

    Args:
        baseline: Reference window (training years).
        monitoring: Window under observation (test year).
        n_bins: Quantile bins per feature.

    Returns:
        A :class:`DriftReport` covering every schema feature and the label.
    """
    if baseline.schema.names != monitoring.schema.names:
        raise ValueError("datasets disagree on the feature schema")
    drifts = []
    for column, name in enumerate(baseline.schema.names):
        psi = population_stability_index(
            baseline.features[:, column],
            monitoring.features[:, column],
            n_bins=n_bins,
        )
        drifts.append(FeatureDrift(name=name, psi=psi))
    label_psi = population_stability_index(
        baseline.labels, monitoring.labels, n_bins=2
    )
    return DriftReport(
        features=tuple(drifts),
        label_psi=label_psi,
        baseline_default_rate=baseline.default_rate,
        monitoring_default_rate=monitoring.default_rate,
    )


@dataclass(frozen=True)
class ConceptDrift:
    """Shift in a feature's relationship with the label between windows.

    PSI only sees marginal (covariate) drift; the paper's dominant 2020
    shift is *concept* drift — P(y|x) changes while the marginals barely
    move.  The cheapest industrial probe for that is the change in each
    feature's point-biserial correlation with the default label.
    """

    name: str
    baseline_correlation: float
    monitoring_correlation: float

    @property
    def shift(self) -> float:
        """Absolute change in the feature-label correlation."""
        return abs(self.monitoring_correlation - self.baseline_correlation)


def _label_correlations(dataset: LoanDataset) -> np.ndarray:
    """Per-feature correlation with the label (0 for constant columns)."""
    features = dataset.features
    labels = dataset.labels
    centered_y = labels - labels.mean()
    y_norm = np.sqrt((centered_y**2).sum())
    centered_x = features - features.mean(axis=0)
    x_norms = np.sqrt((centered_x**2).sum(axis=0))
    with np.errstate(invalid="ignore", divide="ignore"):
        correlations = (centered_x.T @ centered_y) / (x_norms * y_norm)
    return np.nan_to_num(correlations)


def concept_drift_report(
    baseline: LoanDataset, monitoring: LoanDataset
) -> list[ConceptDrift]:
    """Feature-label correlation shifts between two windows.

    Args:
        baseline: Reference window (training years).
        monitoring: Window under observation (test year).

    Returns:
        One :class:`ConceptDrift` per feature, sorted by descending shift.
        On the synthetic platform, the spurious regional signals top the
        list in 2020 (their anti-causal strength decays) while the
        invariant credit features stay put — the exact structure Section
        IV-B describes.
    """
    if baseline.schema.names != monitoring.schema.names:
        raise ValueError("datasets disagree on the feature schema")
    base_corr = _label_correlations(baseline)
    mon_corr = _label_correlations(monitoring)
    drifts = [
        ConceptDrift(
            name=name,
            baseline_correlation=float(base_corr[i]),
            monitoring_correlation=float(mon_corr[i]),
        )
        for i, name in enumerate(baseline.schema.names)
    ]
    return sorted(drifts, key=lambda d: -d.shift)
