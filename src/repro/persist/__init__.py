"""Model persistence: JSON codecs and full-pipeline artifacts.

The canonical save/load surface for whole pipelines is
:class:`repro.serve.registry.ModelRegistry`; :func:`save_pipeline` /
:func:`load_pipeline` remain as deprecation shims.
"""

from repro.persist.artifacts import (
    ScoringModel,
    load_pipeline,
    pipeline_to_payload,
    save_pipeline,
    scoring_model_from_payload,
)
from repro.persist.codec import (
    binner_from_dict,
    binner_to_dict,
    gbdt_from_dict,
    gbdt_to_dict,
    tree_from_dict,
    tree_to_dict,
)

__all__ = [
    "ScoringModel",
    "load_pipeline",
    "save_pipeline",
    "pipeline_to_payload",
    "scoring_model_from_payload",
    "binner_from_dict",
    "binner_to_dict",
    "gbdt_from_dict",
    "gbdt_to_dict",
    "tree_from_dict",
    "tree_to_dict",
]
