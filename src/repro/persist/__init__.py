"""Model persistence: JSON codecs and full-pipeline artifacts."""

from repro.persist.artifacts import ScoringModel, load_pipeline, save_pipeline
from repro.persist.codec import (
    binner_from_dict,
    binner_to_dict,
    gbdt_from_dict,
    gbdt_to_dict,
    tree_from_dict,
    tree_to_dict,
)

__all__ = [
    "ScoringModel",
    "load_pipeline",
    "save_pipeline",
    "binner_from_dict",
    "binner_to_dict",
    "gbdt_from_dict",
    "gbdt_to_dict",
    "tree_from_dict",
    "tree_to_dict",
]
