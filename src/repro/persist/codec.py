"""JSON-compatible codecs for every persistable model component.

The production system retrains the loan model periodically and serves it
elsewhere, so models must round-trip through a storage format.  Everything
here encodes to plain JSON types (dicts, lists, floats) and restores objects
that predict *bit-identically* to the originals.  Growth-time state
(histograms, sample indices) is intentionally dropped.
"""

from __future__ import annotations

import numpy as np

from repro.gbdt.binning import QuantileBinner
from repro.gbdt.boosting import GBDTClassifier, GBDTParams
from repro.gbdt.tree import DecisionTree, FlatTree, TreeParams, _Node

__all__ = [
    "binner_to_dict",
    "binner_from_dict",
    "tree_to_dict",
    "tree_from_dict",
    "gbdt_to_dict",
    "gbdt_from_dict",
]

_FORMAT_VERSION = 1


def binner_to_dict(binner: QuantileBinner) -> dict:
    """Encode a fitted quantile binner."""
    if not binner.is_fitted:
        raise ValueError("cannot serialise an unfitted binner")
    return {
        "version": _FORMAT_VERSION,
        "max_bins": binner.max_bins,
        "bin_edges": [edges.tolist() for edges in binner.bin_edges_],
    }


def binner_from_dict(payload: dict) -> QuantileBinner:
    """Restore a quantile binner."""
    _check_version(payload)
    binner = QuantileBinner(max_bins=payload["max_bins"])
    binner.bin_edges_ = [
        np.asarray(edges, dtype=np.float64) for edges in payload["bin_edges"]
    ]
    return binner


def tree_to_dict(tree: DecisionTree) -> dict:
    """Encode a fitted decision tree (prediction structure only)."""
    if tree.n_nodes == 0:
        raise ValueError("cannot serialise an unfitted tree")
    params = tree.params
    return {
        "version": _FORMAT_VERSION,
        "params": {
            "max_leaves": params.max_leaves,
            "max_depth": params.max_depth,
            "min_child_samples": params.min_child_samples,
            "min_child_hessian": params.min_child_hessian,
            "reg_lambda": params.reg_lambda,
            "min_split_gain": params.min_split_gain,
        },
        "nodes": [
            {
                "node_id": node.node_id,
                "depth": node.depth,
                "feature": node.feature,
                "bin_threshold": node.bin_threshold,
                "left": node.left,
                "right": node.right,
                "leaf_index": node.leaf_index,
                "value": node.value,
            }
            for node in tree._nodes
        ],
        "n_leaves": tree.n_leaves,
        "flat": _flat_to_dict(tree.flat),
    }


def _flat_to_dict(flat: FlatTree) -> dict:
    """Encode the struct-of-arrays prediction form."""
    return {
        "feature": flat.feature.tolist(),
        "threshold": flat.threshold.tolist(),
        "left": flat.left.tolist(),
        "right": flat.right.tolist(),
        "leaf_index": flat.leaf_index.tolist(),
        "value": flat.value.tolist(),
        "depth": flat.depth,
    }


def _flat_from_dict(payload: dict) -> FlatTree:
    """Restore the struct-of-arrays prediction form."""
    return FlatTree(
        feature=np.asarray(payload["feature"], dtype=np.int32),
        threshold=np.asarray(payload["threshold"], dtype=np.int32),
        left=np.asarray(payload["left"], dtype=np.int32),
        right=np.asarray(payload["right"], dtype=np.int32),
        leaf_index=np.asarray(payload["leaf_index"], dtype=np.int64),
        value=np.asarray(payload["value"], dtype=np.float64),
        depth=int(payload["depth"]),
    )


def tree_from_dict(payload: dict) -> DecisionTree:
    """Restore a decision tree that predicts identically to the original."""
    _check_version(payload)
    tree = DecisionTree(TreeParams(**payload["params"]))
    tree._nodes = [
        _Node(
            node_id=node["node_id"],
            depth=node["depth"],
            feature=node["feature"],
            bin_threshold=node["bin_threshold"],
            left=node["left"],
            right=node["right"],
            leaf_index=node["leaf_index"],
            value=node["value"],
        )
        for node in payload["nodes"]
    ]
    tree._n_leaves = payload["n_leaves"]
    # Older payloads lack the flattened arrays; the tree rebuilds them
    # lazily from the node list on first prediction.
    if "flat" in payload:
        tree._flat = _flat_from_dict(payload["flat"])
    return tree


def gbdt_to_dict(model: GBDTClassifier) -> dict:
    """Encode a fitted boosted ensemble."""
    if not model.is_fitted:
        raise ValueError("cannot serialise an unfitted GBDT")
    params = model.params
    return {
        "version": _FORMAT_VERSION,
        "params": {
            "n_trees": params.n_trees,
            "learning_rate": params.learning_rate,
            "max_bins": params.max_bins,
            "subsample": params.subsample,
            "colsample": params.colsample,
            "early_stopping_rounds": params.early_stopping_rounds,
            "seed": params.seed,
        },
        "binner": binner_to_dict(model.binner),
        "base_score": model.base_score_,
        "trees": [tree_to_dict(tree) for tree in model.trees_],
        "tree_feature_subsets": [
            subset.tolist() for subset in model.tree_feature_subsets_
        ],
    }


def gbdt_from_dict(payload: dict) -> GBDTClassifier:
    """Restore a boosted ensemble (prediction and leaf encoding work)."""
    _check_version(payload)
    params = payload["params"]
    model = GBDTClassifier(
        GBDTParams(
            n_trees=params["n_trees"],
            learning_rate=params["learning_rate"],
            max_bins=params["max_bins"],
            subsample=params["subsample"],
            colsample=params["colsample"],
            early_stopping_rounds=params["early_stopping_rounds"],
            seed=params["seed"],
        )
    )
    model.binner = binner_from_dict(payload["binner"])
    model.base_score_ = payload["base_score"]
    model.trees_ = [tree_from_dict(tree) for tree in payload["trees"]]
    model.tree_feature_subsets_ = [
        np.asarray(subset, dtype=np.int64)
        for subset in payload["tree_feature_subsets"]
    ]
    return model


def _check_version(payload: dict) -> None:
    version = payload.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported serialisation version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
