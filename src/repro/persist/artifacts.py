"""Save/load the full GBDT+LR scoring model as one JSON artifact.

The deployed object is the composition (GBDT -> leaf one-hot -> LR head);
this module persists all three stages plus metadata, and restores a
:class:`ScoringModel` whose ``predict_proba`` matches the training pipeline
bit for bit.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass

import numpy as np

from repro.data.dataset import LoanDataset
from repro.gbdt.leaf_encoder import LeafIndexEncoder
from repro.models.logistic import LogisticModel
from repro.persist.codec import _FORMAT_VERSION, gbdt_from_dict, gbdt_to_dict
from repro.pipeline.pipeline import LoanDefaultPipeline

__all__ = ["ScoringModel", "save_pipeline", "load_pipeline"]


@dataclass(frozen=True)
class ScoringModel:
    """A restored GBDT+LR scorer with its training metadata."""

    encoder: LeafIndexEncoder
    model: LogisticModel
    theta: np.ndarray
    trainer_name: str
    metadata: dict

    def predict_proba(self, features: np.ndarray | LoanDataset) -> np.ndarray:
        """Default probabilities for raw feature rows (or a dataset)."""
        if isinstance(features, LoanDataset):
            features = features.features
        encoded = self.encoder.transform(np.asarray(features))
        return self.model.predict_proba(self.theta, encoded)


def save_pipeline(
    pipeline: LoanDefaultPipeline,
    path: str | pathlib.Path,
    metadata: dict | None = None,
) -> None:
    """Persist a fitted pipeline to a JSON file.

    Args:
        pipeline: A fitted :class:`LoanDefaultPipeline`.
        path: Destination file.
        metadata: Optional free-form JSON-compatible run metadata.

    Raises:
        RuntimeError: If the pipeline is not fitted.
        ValueError: If the head carries per-environment parameters (the
            fine-tuning baseline), which this artifact format does not hold.
    """
    if not pipeline.is_fitted:
        raise RuntimeError("cannot save an unfitted pipeline")
    result = pipeline.result_
    if hasattr(result, "env_thetas") and getattr(result, "env_thetas"):
        raise ValueError(
            "per-environment fine-tuned heads are not supported by the "
            "single-parameter artifact format"
        )
    payload = {
        "version": _FORMAT_VERSION,
        "trainer_name": result.trainer_name,
        "gbdt": gbdt_to_dict(pipeline.extractor.model_),
        "theta": result.theta.tolist(),
        "l2": result.model.l2,
        "metadata": metadata or {},
    }
    path = pathlib.Path(path)
    path.write_text(json.dumps(payload))


def load_pipeline(path: str | pathlib.Path) -> ScoringModel:
    """Restore a :class:`ScoringModel` from a saved artifact."""
    payload = json.loads(pathlib.Path(path).read_text())
    if payload.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported artifact version {payload.get('version')!r}"
        )
    gbdt = gbdt_from_dict(payload["gbdt"])
    encoder = LeafIndexEncoder(gbdt)
    theta = np.asarray(payload["theta"], dtype=np.float64)
    model = LogisticModel(theta.size, l2=payload["l2"])
    return ScoringModel(
        encoder=encoder,
        model=model,
        theta=theta,
        trainer_name=payload["trainer_name"],
        metadata=payload["metadata"],
    )
