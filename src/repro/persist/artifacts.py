"""Save/load the full GBDT+LR scoring model as one JSON artifact.

The deployed object is the composition (GBDT -> leaf one-hot -> LR head);
this module persists all three stages plus metadata, and restores a
:class:`ScoringModel` whose ``predict_proba`` matches the training pipeline
bit for bit.

The canonical persistence surface is
:class:`repro.serve.registry.ModelRegistry` (``save``/``load`` for versioned
registries, ``save_file``/``load_file`` for bare artifact files).  The
module-level :func:`save_pipeline` / :func:`load_pipeline` are kept as thin
deprecation shims so existing callers and artifacts keep working; the
payload codecs below are what both surfaces share.
"""

from __future__ import annotations

import json
import pathlib
import warnings
from dataclasses import dataclass

import numpy as np

from repro.data.dataset import LoanDataset
from repro.gbdt.leaf_encoder import LeafIndexEncoder
from repro.models.logistic import LogisticModel
from repro.persist.codec import _FORMAT_VERSION, gbdt_from_dict, gbdt_to_dict
from repro.pipeline.pipeline import LoanDefaultPipeline

__all__ = [
    "ScoringModel",
    "pipeline_to_payload",
    "scoring_model_from_payload",
    "save_pipeline",
    "load_pipeline",
]


@dataclass(frozen=True)
class ScoringModel:
    """A restored GBDT+LR scorer with its training metadata."""

    encoder: LeafIndexEncoder
    model: LogisticModel
    theta: np.ndarray
    trainer_name: str
    metadata: dict

    def predict_proba(self, features: np.ndarray | LoanDataset) -> np.ndarray:
        """Default probabilities for raw feature rows (or a dataset)."""
        if isinstance(features, LoanDataset):
            features = features.features
        encoded = self.encoder.transform(np.asarray(features))
        return self.model.predict_proba(self.theta, encoded)

    def predict_leaves(self, features: np.ndarray | LoanDataset) -> np.ndarray:
        """Dense ``(n, n_trees)`` per-tree leaf indices for raw rows.

        The leaf pattern fully determines the score (the LR head only sees
        the one-hot encoding of these indices), which is what the serving
        cache keys on.
        """
        if isinstance(features, LoanDataset):
            features = features.features
        return self.encoder.model.predict_leaves(np.asarray(features))

    def predict_proba_leaves(self, leaf_matrix: np.ndarray) -> np.ndarray:
        """Score precomputed leaf patterns (see :meth:`predict_leaves`)."""
        encoded = self.encoder.encode_leaves(leaf_matrix)
        return self.model.predict_proba(self.theta, encoded)


def pipeline_to_payload(
    pipeline: LoanDefaultPipeline, metadata: dict | None = None
) -> dict:
    """Encode a fitted pipeline as a JSON-compatible artifact payload.

    Args:
        pipeline: A fitted :class:`LoanDefaultPipeline`.
        metadata: Optional free-form JSON-compatible run metadata.

    Returns:
        A dict that round-trips through :func:`scoring_model_from_payload`.

    Raises:
        RuntimeError: If the pipeline is not fitted.
        ValueError: If the head carries per-environment parameters (the
            fine-tuning baseline), which this artifact format does not hold.
    """
    if not pipeline.is_fitted:
        raise RuntimeError("cannot save an unfitted pipeline")
    result = pipeline.result_
    if result.is_per_environment:
        raise ValueError(
            "per-environment fine-tuned heads are not supported by the "
            "single-parameter artifact format"
        )
    return {
        "version": _FORMAT_VERSION,
        "trainer_name": result.trainer_name,
        "gbdt": gbdt_to_dict(pipeline.extractor.model_),
        "theta": result.theta.tolist(),
        "l2": result.model.l2,
        "metadata": metadata or {},
    }


def scoring_model_from_payload(payload: dict) -> ScoringModel:
    """Restore a :class:`ScoringModel` from an artifact payload dict."""
    if payload.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported artifact version {payload.get('version')!r}"
        )
    gbdt = gbdt_from_dict(payload["gbdt"])
    encoder = LeafIndexEncoder(gbdt)
    theta = np.asarray(payload["theta"], dtype=np.float64)
    model = LogisticModel(theta.size, l2=payload["l2"])
    return ScoringModel(
        encoder=encoder,
        model=model,
        theta=theta,
        trainer_name=payload["trainer_name"],
        metadata=payload["metadata"],
    )


def save_pipeline(
    pipeline: LoanDefaultPipeline,
    path: str | pathlib.Path,
    metadata: dict | None = None,
) -> None:
    """Persist a fitted pipeline to a JSON file.

    .. deprecated::
        Use :meth:`repro.serve.registry.ModelRegistry.save_file` (or a
        versioned :meth:`~repro.serve.registry.ModelRegistry.save`) instead.
        This shim delegates and will be removed in a future release.
    """
    warnings.warn(
        "save_pipeline is deprecated; use ModelRegistry.save_file "
        "(repro.serve) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.serve.registry import ModelRegistry

    ModelRegistry.save_file(pipeline, path, metadata=metadata)


def load_pipeline(path: str | pathlib.Path) -> ScoringModel:
    """Restore a :class:`ScoringModel` from a saved artifact.

    .. deprecated::
        Use :meth:`repro.serve.registry.ModelRegistry.load_file` (or a
        versioned :meth:`~repro.serve.registry.ModelRegistry.load`) instead.
        This shim delegates and will be removed in a future release.
    """
    warnings.warn(
        "load_pipeline is deprecated; use ModelRegistry.load_file "
        "(repro.serve) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.serve.registry import ModelRegistry

    return ModelRegistry.load_file(path)
