"""Operating-threshold policies for the companion model.

Fig 5's discussion ends with "the domain experts could use their operation
knowledge to find a trade-off between the two indicators".  This module
turns that into code: given a scored validation stream, pick the decision
threshold that meets a business constraint — a target residual bad-debt
rate, a refusal budget, or a cap on good customers refused.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.calibration import threshold_sweep

__all__ = [
    "OperatingPoint",
    "threshold_for_bad_debt",
    "threshold_for_refusal_budget",
    "threshold_for_fpr_cap",
]


@dataclass(frozen=True)
class OperatingPoint:
    """A chosen threshold and the rates realised at it."""

    threshold: float
    bad_debt_rate: float
    refusal_rate: float
    false_positive_rate: float

    def describe(self) -> str:
        return (
            f"threshold {self.threshold:.3f}: bad debt "
            f"{self.bad_debt_rate:.2%}, refusing {self.refusal_rate:.1%} "
            f"of applications ({self.false_positive_rate:.1%} of good "
            f"customers)"
        )


def _sweep(labels: np.ndarray, scores: np.ndarray,
           n_grid: int) -> dict[str, np.ndarray]:
    thresholds = np.linspace(0.0, 1.0, n_grid)
    return threshold_sweep(labels, scores, thresholds)


def _point(curves: dict[str, np.ndarray], index: int) -> OperatingPoint:
    return OperatingPoint(
        threshold=float(curves["thresholds"][index]),
        bad_debt_rate=float(curves["bad_debt_rate"][index]),
        refusal_rate=float(curves["refusal_rate"][index]),
        false_positive_rate=float(curves["false_positive_rate"][index]),
    )


def threshold_for_bad_debt(
    labels: np.ndarray,
    scores: np.ndarray,
    target_bad_debt_rate: float,
    n_grid: int = 501,
) -> OperatingPoint:
    """Loosest threshold whose residual bad-debt rate meets the target.

    "Loosest" = the highest threshold (fewest refusals) still satisfying
    the constraint; bad debt is monotone non-decreasing in the threshold,
    so this is the business-optimal feasible point.

    Raises:
        ValueError: If no threshold on the grid meets the target.
    """
    if not 0.0 <= target_bad_debt_rate <= 1.0:
        raise ValueError("target_bad_debt_rate must be in [0, 1]")
    curves = _sweep(labels, scores, n_grid)
    feasible = np.flatnonzero(
        curves["bad_debt_rate"] <= target_bad_debt_rate
    )
    if feasible.size == 0:
        raise ValueError(
            f"no threshold achieves bad-debt rate <= {target_bad_debt_rate:.2%}"
        )
    return _point(curves, int(feasible[-1]))


def threshold_for_refusal_budget(
    labels: np.ndarray,
    scores: np.ndarray,
    max_refusal_rate: float,
    n_grid: int = 501,
) -> OperatingPoint:
    """Tightest threshold that refuses at most the budgeted share.

    Refusal rate is monotone non-increasing in the threshold; the tightest
    feasible threshold (lowest) minimises bad debt within the budget.
    """
    if not 0.0 <= max_refusal_rate <= 1.0:
        raise ValueError("max_refusal_rate must be in [0, 1]")
    curves = _sweep(labels, scores, n_grid)
    feasible = np.flatnonzero(curves["refusal_rate"] <= max_refusal_rate)
    if feasible.size == 0:
        raise ValueError(
            f"no threshold refuses <= {max_refusal_rate:.1%} of applications"
        )
    return _point(curves, int(feasible[0]))


def threshold_for_fpr_cap(
    labels: np.ndarray,
    scores: np.ndarray,
    max_false_positive_rate: float,
    n_grid: int = 501,
) -> OperatingPoint:
    """Tightest threshold refusing at most the capped share of good customers.

    This is the customer-experience constraint: among non-defaulting
    applicants, at most ``max_false_positive_rate`` may be refused.
    """
    if not 0.0 <= max_false_positive_rate <= 1.0:
        raise ValueError("max_false_positive_rate must be in [0, 1]")
    curves = _sweep(labels, scores, n_grid)
    fpr = curves["false_positive_rate"]
    feasible = np.flatnonzero(
        np.nan_to_num(fpr, nan=1.0) <= max_false_positive_rate
    )
    if feasible.size == 0:
        raise ValueError(
            f"no threshold keeps FPR <= {max_false_positive_rate:.1%}"
        )
    return _point(curves, int(feasible[0]))
