"""Per-epoch test-metric tracking (the training curves of Figs 6 and 8)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.dataset import EnvironmentData
from repro.metrics.fairness import evaluate_environments, scorable_environments
from repro.models.logistic import LogisticModel
from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = ["KSTrackingCallback"]


class KSTrackingCallback:
    """Epoch callback computing the test KS of the current parameters.

    Instances are passed as the ``callback`` argument of
    :meth:`repro.train.base.Trainer.fit`; each epoch's metric lands in
    ``history.tracked`` and in :attr:`curve`.

    Args:
        model: The LR model being trained (provides ``predict_proba``).
        test_environments: Encoded test environments to score.
        statistic: "mean" for mKS (Fig 6/8 plots the test KS evolution) or
            "worst" for wKS.
        every: Compute only every N epochs to bound tracking overhead.
        tracer: Optional run tracer; each tracked epoch additionally emits
            a ``ks_tracking`` event into the run log.
    """

    def __init__(
        self,
        model: LogisticModel,
        test_environments: Sequence[EnvironmentData],
        statistic: str = "mean",
        every: int = 1,
        tracer: Tracer | None = None,
    ):
        if statistic not in ("mean", "worst"):
            raise ValueError("statistic must be 'mean' or 'worst'")
        if every < 1:
            raise ValueError("every must be >= 1")
        self.model = model
        self.statistic = statistic
        self.every = every
        labels = {env.name: env.labels for env in test_environments}
        usable = set(scorable_environments(labels))
        self.environments = [e for e in test_environments if e.name in usable]
        if not self.environments:
            raise ValueError("no test environment has both classes present")
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: (epoch, ks) pairs accumulated during training.
        self.curve: list[tuple[int, float]] = []

    def __call__(self, epoch: int, theta: np.ndarray) -> float | None:
        if epoch % self.every:
            return None
        labels_by_env = {}
        scores_by_env = {}
        for env in self.environments:
            labels_by_env[env.name] = env.labels
            scores_by_env[env.name] = self.model.predict_proba(theta, env.features)
        report = evaluate_environments(labels_by_env, scores_by_env)
        value = report.mean_ks if self.statistic == "mean" else report.worst_ks
        self.curve.append((epoch, value))
        self.tracer.event(
            "ks_tracking", epoch=epoch, statistic=self.statistic, ks=value
        )
        return value

    def best(self) -> tuple[int, float]:
        """(epoch, ks) of the best tracked epoch."""
        if not self.curve:
            raise RuntimeError("no epochs tracked yet")
        return max(self.curve, key=lambda pair: pair[1])
