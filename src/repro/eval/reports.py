"""Plain-text table and curve rendering for the experiment harness.

Every benchmark prints the same rows/series the paper's tables and figures
report; these helpers keep that output consistent and aligned.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_series", "highlight_best"]


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str],
    title: str | None = None,
    float_format: str = "{:.4f}",
) -> str:
    """Render rows of dicts as an aligned text table.

    Args:
        rows: One mapping per table row.
        columns: Column order; missing cells render as ``-``.
        title: Optional heading line.
        float_format: Format applied to float cells.

    Returns:
        The rendered multi-line string.
    """
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        if cell is None:
            return "-"
        return str(cell)

    rendered = [[render(row.get(col)) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) if rendered else len(col)
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for r in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(r, widths)))
    return "\n".join(lines)


def format_series(
    name: str,
    xs: Sequence[object],
    ys: Sequence[float],
    x_label: str = "x",
    y_label: str = "y",
    float_format: str = "{:.4f}",
) -> str:
    """Render one figure series as ``x -> y`` lines (a text 'plot')."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must align")
    lines = [f"{name}  ({x_label} -> {y_label})"]
    for x, y in zip(xs, ys):
        lines.append(f"  {x}: {float_format.format(float(y))}")
    return "\n".join(lines)


def highlight_best(
    rows: Sequence[Mapping[str, object]],
    metric: str,
    maximize: bool = True,
) -> str:
    """Name of the row (by its 'method' key) with the best metric value."""
    if not rows:
        raise ValueError("no rows")
    scored = [r for r in rows if isinstance(r.get(metric), (int, float))]
    if not scored:
        raise ValueError(f"no row has a numeric {metric!r}")
    best = max(scored, key=lambda r: r[metric]) if maximize else min(
        scored, key=lambda r: r[metric]
    )
    return str(best.get("method", "<unnamed>"))
