"""Offline replay of the paper's online test (Section IV-C1, Fig 5).

The online evaluation appends the model to the existing approval system as a
"companion runner": loans the incumbent system approves are additionally
screened by the new model at threshold τ.  We replay a held-out application
stream: without the model the bad-debt rate equals the stream's default
rate; with the model it is the default rate among applications scoring
below τ.  Sweeping τ yields the two curves of Fig 5 (false positive rate vs
residual default rate) and the headline bad-debt reduction at τ = 0.5.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.calibration import (
    bad_debt_rate,
    false_positive_rate,
    refusal_rate,
    threshold_sweep,
)

__all__ = ["OnlineReplayResult", "replay_online_test"]


@dataclass(frozen=True)
class OnlineReplayResult:
    """Outcome of an online-replay simulation.

    Attributes:
        baseline_bad_debt_rate: Default rate with no companion model (the
            incumbent system alone; paper reports 2.09%).
        companion_bad_debt_rate: Default rate among approved loans with the
            companion model at ``operating_threshold`` (paper: 0.73%).
        operating_threshold: The threshold of the headline numbers.
        reduction_fraction: Relative bad-debt reduction (paper: 63%).
        curves: Full threshold sweep (thresholds, false_positive_rate,
            bad_debt_rate, refusal_rate arrays) — the Fig 5 series.
    """

    baseline_bad_debt_rate: float
    companion_bad_debt_rate: float
    operating_threshold: float
    curves: dict[str, np.ndarray]

    @property
    def reduction_fraction(self) -> float:
        if self.baseline_bad_debt_rate == 0:
            return 0.0
        return 1.0 - self.companion_bad_debt_rate / self.baseline_bad_debt_rate

    @property
    def refusal_at_threshold(self) -> float:
        """Fraction of applications the companion model refuses."""
        idx = int(np.argmin(np.abs(self.curves["thresholds"]
                                   - self.operating_threshold)))
        return float(self.curves["refusal_rate"][idx])


def replay_online_test(
    labels: np.ndarray,
    scores: np.ndarray,
    operating_threshold: float = 0.5,
    thresholds: np.ndarray | None = None,
) -> OnlineReplayResult:
    """Replay a held-out application stream through the companion model.

    Args:
        labels: True default outcomes of the stream (all were approved by
            the incumbent system, so their default rate is the baseline
            bad-debt rate).
        scores: Companion-model default probabilities.
        operating_threshold: Threshold for the headline comparison (0.5 in
            the paper).
        thresholds: Optional sweep grid for the curves.

    Returns:
        An :class:`OnlineReplayResult`.
    """
    labels = np.asarray(labels, dtype=np.float64).ravel()
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if labels.size == 0:
        raise ValueError("empty stream")
    baseline = float(labels.mean())
    companion = bad_debt_rate(labels, scores, operating_threshold)
    curves = threshold_sweep(labels, scores, thresholds)
    return OnlineReplayResult(
        baseline_bad_debt_rate=baseline,
        companion_bad_debt_rate=companion,
        operating_threshold=operating_threshold,
        curves=curves,
    )
