"""Evaluation: tracking callbacks, online replay, report rendering."""

from repro.eval.online import OnlineReplayResult, replay_online_test
from repro.eval.policy import (
    OperatingPoint,
    threshold_for_bad_debt,
    threshold_for_fpr_cap,
    threshold_for_refusal_budget,
)
from repro.eval.reports import format_series, format_table, highlight_best
from repro.eval.tracking import KSTrackingCallback

__all__ = [
    "OnlineReplayResult",
    "replay_online_test",
    "OperatingPoint",
    "threshold_for_bad_debt",
    "threshold_for_fpr_cap",
    "threshold_for_refusal_budget",
    "format_series",
    "format_table",
    "highlight_best",
    "KSTrackingCallback",
]
