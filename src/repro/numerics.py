"""Shared numerically-stable scalar kernels.

The logistic function and the binary cross-entropy appear in three places
(the GBDT boosting objective, the LR head, and the synthetic label model);
this module is the single implementation all of them import, so the exact
clipping/branching behaviour cannot drift between components.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sigmoid", "binary_cross_entropy"]


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function.

    Splits on the sign of ``z`` so neither branch ever exponentiates a
    positive argument — no overflow for any finite input.

    The computation dtype follows the input: float32 stays float32 (the
    GBDT reduced-precision hot path), everything else is done in float64
    exactly as before.
    """
    z = np.asarray(z)
    if z.dtype != np.float32:
        z = np.asarray(z, dtype=np.float64)
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    exp_z = np.exp(z[~pos])
    out[~pos] = exp_z / (1.0 + exp_z)
    return out


def binary_cross_entropy(labels: np.ndarray, probabilities: np.ndarray) -> float:
    """Mean BCE with probability clipping for numerical safety."""
    probabilities = np.clip(probabilities, 1e-12, 1.0 - 1e-12)
    return float(
        -np.mean(
            labels * np.log(probabilities)
            + (1.0 - labels) * np.log(1.0 - probabilities)
        )
    )
