"""Joint-search benchmark: the extractor-encoding cache, on vs off.

Runs the same joint GBDT×head ASHA search twice through
:func:`~repro.tune.asha.run_joint_asha` — once with the
content-addressed :class:`~repro.tune.extractor_cache.ExtractorEncodingCache`
publishing each distinct extractor encoding exactly once, once with every
trial evaluation re-fitting and re-encoding inline — asserting along the
way that the two leaderboards are **bit-identical** (the cache is a pure
perf optimisation or it is a bug).  The payload lands in tracked
``BENCH_tune.json``.

Wall-clock barely moves on a 1-core CI container (the encodes serialise
either way), so the headline number is *encode work*: the cache's
measured ``encode_seconds`` against the per-hit costs it avoided
(``encode_seconds_saved``).  With T trial evaluations over E distinct
extractor configurations the expected ratio is ~T/E.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass

from repro.experiments.runner import ExperimentContext, ExperimentSettings
from repro.perfbench.suites import machine_info

__all__ = [
    "TuneBenchConfig",
    "run_tune_benchmark",
    "summarize_tune",
    "validate_tune_payload",
    "write_tune_bench_json",
]

#: Format version of BENCH_tune.json.
TUNE_BENCH_FORMAT = 1

#: Required keys of the ``joint_search`` benchmark entry.
_REQUIRED_JOINT = (
    "trainer", "n_trials", "n_extractors", "trial_evaluations",
    "trials_per_extractor", "cached", "uncached", "encode_seconds_saved",
    "encode_speedup", "wall_speedup", "bit_identical",
)


@dataclass(frozen=True)
class TuneBenchConfig:
    """Sizes of one cached-vs-uncached joint-search comparison.

    The default is the tracked configuration: 8 trials round-robined over
    2 distinct extractor configurations under an eta=2 two-rung schedule
    gives 12 trial evaluations — 6 per extractor, so the cache replaces
    12 fit+leaf-encodes with 2.  :meth:`smoke` shrinks the data for CI
    rot-protection while keeping trials-per-extractor at 4.

    Attributes:
        n_samples: Synthetic platform size.
        data_seed: Platform seed.
        trainer: Head trainer searched (its registered default space).
        n_trials: Joint configurations sampled.
        n_extractors: Distinct extractor configurations shared round-robin
            across the trials.
        eta: Halving rate between rungs.
        min_epochs: Epoch budget of rung 0.
        max_epochs: Epoch budget cap of the last rung.
        seed: Search seed (sampling, splits, trial seeds).
        n_jobs: Worker processes for the trial fan-out.
    """

    n_samples: int = 6_000
    data_seed: int = 7
    trainer: str = "ERM"
    n_trials: int = 8
    n_extractors: int = 2
    eta: int = 2
    min_epochs: int = 4
    max_epochs: int = 8
    seed: int = 0
    n_jobs: int = 1

    @classmethod
    def smoke(cls) -> "TuneBenchConfig":
        """Tiny comparison: every path exercised, nothing timed long."""
        return cls(n_samples=2_500, n_trials=4, max_epochs=4)


def _ranked_projection(result) -> list[dict]:
    """A search's deterministic ranking: trials minus wall-clock fields.

    Mirrors :func:`repro.tune.leaderboard.ranked_trials` without building
    a full leaderboard payload (no machine/git stamps to diff around).
    """
    return [
        {k: v for k, v in trial.to_json().items()
         if k not in ("train_seconds", "search_cost")}
        for trial in result.ranked()
    ]


def run_tune_benchmark(config: TuneBenchConfig | None = None) -> dict:
    """Run the cached-vs-uncached comparison; returns its results dict.

    Returns:
        ``{"joint_search": {...}}`` with wall-clock for both modes, the
        cache's hit/miss/encode accounting, the encode-work speedup and
        the ``bit_identical`` flag CI gates on.
    """
    from repro.tune import (
        ASHAConfig,
        HPSpace,
        default_extractor_space,
        default_space,
        run_joint_asha,
    )

    config = config or TuneBenchConfig()
    context = ExperimentContext(
        ExperimentSettings(n_samples=config.n_samples,
                           data_seed=config.data_seed)
    )
    # Joint searches consume *raw* (un-encoded) environments — the
    # extractor half of each trial owns the encoding.
    environments = context.split.train.environments()
    space = HPSpace.joint(default_extractor_space(),
                          default_space(config.trainer))
    asha = ASHAConfig(
        n_trials=config.n_trials, eta=config.eta,
        min_epochs=config.min_epochs, max_epochs=config.max_epochs,
        seed=config.seed,
    )

    start = time.perf_counter()
    uncached_result, _ = run_joint_asha(
        space, environments, asha,
        n_extractors=config.n_extractors, n_jobs=config.n_jobs,
        use_cache=False,
    )
    uncached_wall = time.perf_counter() - start

    start = time.perf_counter()
    cached_result, stats = run_joint_asha(
        space, environments, asha,
        n_extractors=config.n_extractors, n_jobs=config.n_jobs,
        use_cache=True,
    )
    cached_wall = time.perf_counter() - start

    identical = (_ranked_projection(cached_result)
                 == _ranked_projection(uncached_result))
    evaluations = sum(len(r.evaluated) for r in cached_result.rungs)
    # Total encode work an uncached run performs, estimated from the
    # cache's own accounting: what it spent encoding each distinct
    # configuration once, plus the per-hit costs it avoided.
    encode_work_uncached = stats.encode_seconds + stats.encode_seconds_saved
    joint = {
        "trainer": config.trainer,
        "n_trials": config.n_trials,
        "n_extractors": config.n_extractors,
        "trial_evaluations": evaluations,
        "trials_per_extractor": evaluations / config.n_extractors,
        "cached": {
            "wall_s": cached_wall,
            "encode_s": stats.encode_seconds,
            "hits": stats.hits,
            "misses": stats.misses,
            "hit_rate": stats.hit_rate,
            "published_bytes": stats.published_bytes,
            "evictions": stats.evictions,
        },
        "uncached": {
            "wall_s": uncached_wall,
            "encode_s": encode_work_uncached,
        },
        "encode_seconds_saved": stats.encode_seconds_saved,
        "encode_speedup": (
            encode_work_uncached / stats.encode_seconds
            if stats.encode_seconds > 0 else float("inf")
        ),
        "wall_speedup": (
            uncached_wall / cached_wall if cached_wall > 0 else float("inf")
        ),
        "bit_identical": identical,
    }
    return {"joint_search": joint}


def validate_tune_payload(payload: object) -> dict:
    """Check a ``BENCH_tune.json`` payload; returns it.

    Raises:
        ValueError: On missing keys, a wrong format, a leaderboard
            mismatch (``bit_identical`` false) or an inert cache (zero
            hits despite trials sharing extractors).
    """
    if not isinstance(payload, dict):
        raise ValueError("tune bench payload is not a JSON object")
    missing = [k for k in ("format", "config", "machine", "benchmarks")
               if k not in payload]
    if missing:
        raise ValueError(f"payload is missing keys {missing}")
    if payload["format"] != TUNE_BENCH_FORMAT:
        raise ValueError(
            f"payload format {payload['format']!r} != {TUNE_BENCH_FORMAT}"
        )
    joint = payload["benchmarks"].get("joint_search")
    if not isinstance(joint, dict):
        raise ValueError("benchmarks must contain a 'joint_search' object")
    joint_missing = [k for k in _REQUIRED_JOINT if k not in joint]
    if joint_missing:
        raise ValueError(f"joint_search is missing keys {joint_missing}")
    if not joint["bit_identical"]:
        raise ValueError(
            "cached and uncached joint searches disagree — the cache "
            "changed the leaderboard"
        )
    if joint["trials_per_extractor"] > 1 and joint["cached"]["hits"] == 0:
        raise ValueError(
            "cache recorded zero hits although trials share extractor "
            "configurations"
        )
    return payload


def write_tune_bench_json(
    path: str | pathlib.Path,
    results: dict,
    config: TuneBenchConfig,
) -> dict:
    """Write the tracked ``BENCH_tune.json`` payload and return it."""
    payload = {
        "format": TUNE_BENCH_FORMAT,
        "config": {
            "n_samples": config.n_samples,
            "data_seed": config.data_seed,
            "trainer": config.trainer,
            "n_trials": config.n_trials,
            "n_extractors": config.n_extractors,
            "eta": config.eta,
            "min_epochs": config.min_epochs,
            "max_epochs": config.max_epochs,
            "seed": config.seed,
            "n_jobs": config.n_jobs,
        },
        "machine": machine_info(),
        "benchmarks": results,
    }
    validate_tune_payload(payload)
    pathlib.Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def summarize_tune(results: dict) -> str:
    """Human-readable rendering of one cached-vs-uncached comparison."""
    joint = results["joint_search"]
    flag = "bit-identical" if joint["bit_identical"] else "MISMATCH"
    cached, uncached = joint["cached"], joint["uncached"]
    return "\n".join([
        f"joint search: {joint['n_trials']} trials over "
        f"{joint['n_extractors']} extractors "
        f"({joint['trial_evaluations']} evaluations, "
        f"{joint['trials_per_extractor']:.1f} per extractor)",
        f"  uncached {uncached['wall_s']:8.3f} s wall   "
        f"{uncached['encode_s']:7.3f} s encode",
        f"  cached   {cached['wall_s']:8.3f} s wall   "
        f"{cached['encode_s']:7.3f} s encode   "
        f"hit-rate {cached['hit_rate']:.2f}",
        f"  encode speedup {joint['encode_speedup']:5.2f}x   "
        f"saved {joint['encode_seconds_saved']:.3f} s   "
        f"wall {joint['wall_speedup']:5.2f}x   {flag}",
    ])
