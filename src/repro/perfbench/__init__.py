"""Tracked GBDT performance microbenchmarks.

This package keeps the repo's perf story honest in two ways:

* :mod:`repro.perfbench.reference` preserves the pre-vectorisation *seed*
  kernels (per-feature histogram loops, per-node mask routing, COO leaf
  encoding, per-round matrix copies) verbatim.  They are the baseline the
  golden-equivalence tests compare against bit-for-bit, and the
  denominator of every reported speedup.
* :mod:`repro.perfbench.suites` times the live kernels against those seed
  kernels (median-of-k, see :func:`repro.timing.measure`) and writes
  ``BENCH_gbdt.json`` so the trajectory is visible PR-over-PR.

Run via ``python -m repro bench`` (or ``python -m benchmarks.perf`` from
the repo root).
"""

from repro.perfbench.suites import (
    BenchConfig,
    run_suite,
    summarize,
    write_bench_json,
)

__all__ = ["BenchConfig", "run_suite", "summarize", "write_bench_json"]
