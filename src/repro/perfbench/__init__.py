"""Tracked GBDT performance microbenchmarks.

This package keeps the repo's perf story honest in two ways:

* :mod:`repro.perfbench.reference` preserves the pre-vectorisation *seed*
  kernels (per-feature histogram loops, per-node mask routing, COO leaf
  encoding, per-round matrix copies) verbatim.  They are the baseline the
  golden-equivalence tests compare against bit-for-bit, and the
  denominator of every reported speedup.
* :mod:`repro.perfbench.suites` times the live kernels against those seed
  kernels (median-of-k, see :func:`repro.timing.measure`) and writes
  ``BENCH_gbdt.json`` so the trajectory is visible PR-over-PR.
* :mod:`repro.perfbench.serving` times the request path — micro-batched
  vs row-at-a-time scoring (bit-identity asserted), warm-cache scoring,
  registry load latency — and writes ``BENCH_serving.json``.
* :mod:`repro.perfbench.parallel` times the experiment trainer×seed
  fan-out serially and across worker pools (bit-identity asserted per
  count) and writes ``BENCH_parallel.json``.
* :mod:`repro.perfbench.scale` measures the end-to-end streaming
  pipeline (wall-clock + peak RSS via :mod:`repro.perfbench.rss`) at
  paper-scale row counts and writes ``BENCH_scale.json``.
* :mod:`repro.perfbench.tune` runs the same joint GBDT×head search with
  the extractor-encoding cache on and off (bit-identity asserted) and
  writes ``BENCH_tune.json``.

Run via ``python -m repro bench`` / ``python -m repro serve-bench`` /
``python -m repro scale-bench`` (or ``python -m benchmarks.perf`` from
the repo root); ``repro bench --jobs`` adds the parallel-scaling suite.
"""

from repro.perfbench.parallel import (
    ParallelBenchConfig,
    run_parallel_suite,
    summarize_parallel,
    write_parallel_bench_json,
)
from repro.perfbench.rss import PeakMemoryProbe, read_peak_rss_bytes
from repro.perfbench.scale import (
    ScaleBenchConfig,
    dtype_tolerance_check,
    run_scale_point,
    run_scale_suite,
    summarize_scale,
    validate_scale_payload,
    write_scale_bench_json,
)
from repro.perfbench.serving import (
    ServingBenchConfig,
    run_serving_suite,
    summarize_serving,
    validate_serving_payload,
    write_serving_bench_json,
)
from repro.perfbench.suites import (
    BenchConfig,
    effective_cpu_count,
    machine_info,
    run_suite,
    summarize,
    write_bench_json,
)
from repro.perfbench.tune import (
    TuneBenchConfig,
    run_tune_benchmark,
    summarize_tune,
    validate_tune_payload,
    write_tune_bench_json,
)

__all__ = [
    "BenchConfig",
    "ParallelBenchConfig",
    "PeakMemoryProbe",
    "ScaleBenchConfig",
    "ServingBenchConfig",
    "TuneBenchConfig",
    "dtype_tolerance_check",
    "effective_cpu_count",
    "machine_info",
    "read_peak_rss_bytes",
    "run_scale_point",
    "run_scale_suite",
    "run_suite",
    "run_parallel_suite",
    "run_serving_suite",
    "run_tune_benchmark",
    "summarize",
    "summarize_parallel",
    "summarize_scale",
    "summarize_serving",
    "summarize_tune",
    "validate_scale_payload",
    "validate_serving_payload",
    "validate_tune_payload",
    "write_bench_json",
    "write_parallel_bench_json",
    "write_scale_bench_json",
    "write_serving_bench_json",
    "write_tune_bench_json",
]
