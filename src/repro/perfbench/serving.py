"""Tracked serving benchmarks: batching, caching, registry, multi-worker.

Four tracked scenarios, written to ``BENCH_serving.json`` (run via
``python -m repro serve-bench``):

* ``micro_batching`` — scoring the same rows through the
  :class:`~repro.serve.service.ScoringService` micro-batch queue vs a
  row-at-a-time ``predict_proba`` loop on the same artifact.  Reports the
  throughput ratio and asserts the scores are **bit-identical** — the
  speedup is free of numerical drift by construction.
* ``cache_hot`` — re-scoring a recurring traffic pattern with the leaf
  cache warm vs cold (exactness again checked).
* ``registry_load`` — wall time of ``ModelRegistry.load("champion")``,
  the cost of a serving process (re)start or a promote-triggered reload.
* ``workers`` — the multi-worker shared-memory front-end
  (:class:`~repro.serve.frontend.ScoringFrontend`) at each tracked worker
  count: end-to-end p50/p99 request latency, sustained rows/sec, and the
  bit-identity flag against single-process ``predict_proba`` (the CI soak
  gate).
* ``metrics_overhead`` — the same front-end stream with the live
  telemetry plane fully enabled (metrics slab + every online monitor)
  vs disabled.  The enabled path carries a <2% overhead budget and must
  stay bit-identical; both are CI gates via
  :func:`validate_serving_payload`.

The fixture artifact is a real (small) GBDT+LR pipeline trained on the
synthetic platform, stored in a temporary :class:`ModelRegistry`.
"""

from __future__ import annotations

import json
import pathlib
import tempfile
from dataclasses import dataclass

import numpy as np

from repro.obs.tracer import NULL_TRACER, Tracer
from repro.timing import measure

__all__ = [
    "ServingBenchConfig",
    "run_serving_suite",
    "summarize_serving",
    "validate_serving_payload",
    "write_serving_bench_json",
]

#: Format version of BENCH_serving.json (3 added ``metrics_overhead``).
SERVING_BENCH_FORMAT = 3

#: Relative wall-clock budget of the enabled telemetry plane, percent.
METRICS_OVERHEAD_BUDGET_PCT = 2.0


@dataclass(frozen=True)
class ServingBenchConfig:
    """Sizes and repetition counts of one serving-suite run.

    The default is the tracked configuration; :meth:`smoke` shrinks
    everything for CI rot-protection.

    Attributes:
        n_train: Rows of the synthetic platform the fixture model trains on.
        n_score: Request rows scored by each scenario.
        n_patterns: Distinct rows in the recurring-traffic cache scenario.
        batch_size: Micro-batch auto-flush threshold.
        n_epochs: LR-head epochs of the fixture model (quality irrelevant).
        repeats: Timing repeats per scenario (median reported).
        seed: Data/trainer seed.
        worker_counts: Front-end worker counts the ``workers`` scenario
            sweeps (the tracked file reports 1/2/4).
    """

    n_train: int = 8_000
    n_score: int = 2_000
    n_patterns: int = 64
    batch_size: int = 256
    n_epochs: int = 10
    repeats: int = 3
    warmup: int = 1
    seed: int = 0
    worker_counts: tuple[int, ...] = (1, 2, 4)

    @classmethod
    def smoke(cls) -> "ServingBenchConfig":
        """Tiny sizes: every scenario exercised once, nothing timed long."""
        return cls(n_train=1_500, n_score=200, n_patterns=16, batch_size=32,
                   n_epochs=2, repeats=1, warmup=0, worker_counts=(1, 2))


def _fixture(config: ServingBenchConfig, root: pathlib.Path,
             model_path: str | pathlib.Path | None = None):
    """Train a small pipeline, store it in a registry, return the pieces.

    With ``model_path`` set, no fixture is trained: the saved artifact
    (e.g. the scale benchmark's 1.4M-row model, via
    ``scale-bench --save-model``) is imported as champion instead, and
    request rows are generated at that model's feature width — the
    "does the ScoringService sustain the paper-scale model" mode.
    """
    from repro.baselines.erm import ERMTrainer
    from repro.data.generator import GeneratorConfig, LoanDataGenerator
    from repro.data.splits import temporal_split
    from repro.pipeline.pipeline import LoanDefaultPipeline
    from repro.serve.registry import ModelRegistry
    from repro.train.base import BaseTrainConfig

    if model_path is not None:
        registry = ModelRegistry(root)
        registry.import_file(model_path, metadata={"bench": "serving"},
                             slot="champion")
        model = registry.load("champion")
        # The artifact's binner fixes the raw feature width it scores.
        n_features = len(model.encoder.model.binner.bin_edges_)
        dataset = LoanDataGenerator(
            GeneratorConfig(
                n_samples=max(config.n_score, 2_000),
                total_features=n_features,
                n_spurious=min(8, max(1, n_features // 8)),
                seed=config.seed,
            )
        ).generate()
        rng = np.random.default_rng(config.seed)
        take = rng.choice(dataset.features.shape[0], size=config.n_score,
                          replace=True)
        return registry, np.ascontiguousarray(dataset.features[take])

    dataset = LoanDataGenerator(
        GeneratorConfig(n_samples=config.n_train, total_features=40,
                        n_spurious=4, seed=config.seed)
    ).generate()
    split = temporal_split(dataset)
    pipeline = LoanDefaultPipeline(
        ERMTrainer(BaseTrainConfig(n_epochs=config.n_epochs))
    )
    pipeline.fit(split.train)
    registry = ModelRegistry(root)
    registry.save(pipeline, metadata={"bench": "serving"})

    rng = np.random.default_rng(config.seed)
    rows = split.test.features
    take = rng.choice(rows.shape[0], size=config.n_score, replace=True)
    return registry, np.ascontiguousarray(rows[take])


def bench_micro_batching(config: ServingBenchConfig, registry,
                         request_rows: np.ndarray) -> dict:
    """Micro-batched service throughput vs a row-at-a-time loop."""
    from repro.serve.service import ScoringService, ServiceConfig

    model = registry.load("champion")

    def rows_loop() -> np.ndarray:
        return np.array(
            [model.predict_proba(row[None, :])[0] for row in request_rows]
        )

    def batched() -> np.ndarray:
        service = ScoringService(
            model, config=ServiceConfig(max_batch_size=config.batch_size)
        )
        tickets = [service.submit(row) for row in request_rows]
        service.flush()
        return np.array([t.score for t in tickets])

    row_scores = rows_loop()
    batch_scores = batched()
    bit_identical = bool(np.array_equal(row_scores, batch_scores))

    row_time = measure(rows_loop, repeats=config.repeats,
                       warmup=config.warmup)
    batch_time = measure(batched, repeats=config.repeats,
                         warmup=config.warmup)
    n = request_rows.shape[0]
    return {
        "n_rows": n,
        "batch_size": config.batch_size,
        "row_at_a_time_s": row_time.median_seconds,
        "micro_batched_s": batch_time.median_seconds,
        "row_at_a_time_rows_per_s": n / row_time.median_seconds,
        "micro_batched_rows_per_s": n / batch_time.median_seconds,
        "speedup_batched_vs_rows": (
            row_time.median_seconds / batch_time.median_seconds
            if batch_time.median_seconds > 0 else float("inf")
        ),
        "bit_identical": bit_identical,
        "repeats": config.repeats,
    }


def bench_cache_hot(config: ServingBenchConfig, registry,
                    request_rows: np.ndarray) -> dict:
    """Warm leaf-pattern cache vs cold scoring on recurring traffic."""
    from repro.serve.service import ScoringService, ServiceConfig

    model = registry.load("champion")
    # Recurring traffic: the request stream cycles over a few patterns.
    patterns = request_rows[:config.n_patterns]
    stream = patterns[
        np.tile(np.arange(config.n_patterns),
                max(1, config.n_score // config.n_patterns))
    ]

    def cold() -> np.ndarray:
        return model.predict_proba(stream)

    cached_service = ScoringService(
        model,
        config=ServiceConfig(max_batch_size=config.batch_size,
                             cache_size=4 * config.n_patterns),
    )
    cached_service.score_batch(stream)  # warm the cache

    def warm() -> np.ndarray:
        return cached_service.score_batch(stream)

    identical = bool(np.array_equal(cold(), warm()))
    cold_time = measure(cold, repeats=config.repeats, warmup=config.warmup)
    warm_time = measure(warm, repeats=config.repeats, warmup=config.warmup)
    return {
        "n_rows": int(stream.shape[0]),
        "n_patterns": config.n_patterns,
        "cold_s": cold_time.median_seconds,
        "warm_s": warm_time.median_seconds,
        "speedup_warm_vs_cold": (
            cold_time.median_seconds / warm_time.median_seconds
            if warm_time.median_seconds > 0 else float("inf")
        ),
        "bit_identical": identical,
        "hit_rate": cached_service._caches["champion"].hit_rate,
        "repeats": config.repeats,
    }


def bench_registry_load(config: ServingBenchConfig, registry,
                        request_rows: np.ndarray) -> dict:
    """Champion load latency: the cost of a serving (re)start."""
    del request_rows
    load_time = measure(lambda: registry.load("champion"),
                        repeats=max(config.repeats, 3),
                        warmup=config.warmup)
    return {
        "median_s": load_time.median_seconds,
        "best_s": load_time.best_seconds,
        "repeats": load_time.repeats,
    }


def bench_workers(config: ServingBenchConfig, registry,
                  request_rows: np.ndarray) -> dict:
    """Multi-worker shared-memory front-end at each tracked worker count.

    One :class:`~repro.serve.frontend.ScoringFrontend` per count scores
    the whole request stream; latency percentiles come from the
    front-end's own admission→resolution histogram (so they include
    queueing delay, not just compute), and every count's scores are
    checked bit-identical against single-process ``predict_proba`` — the
    flag the CI soak step gates on.
    """
    from repro.serve.frontend import FrontendConfig, ScoringFrontend

    model = registry.load("champion")
    reference = model.predict_proba(request_rows)
    n = request_rows.shape[0]
    per_workers: dict[str, dict] = {}
    for count in config.worker_counts:
        frontend = ScoringFrontend(
            model,
            FrontendConfig(n_workers=count,
                           max_batch_size=config.batch_size,
                           max_queue=max(2 * n, 64)),
        )
        frontend.start()
        try:
            def stream() -> np.ndarray:
                results = frontend.score_stream(request_rows)
                return np.array([r.score for r in results])

            scores = stream()
            bit_identical = bool(np.array_equal(scores, reference))
            wall = measure(stream, repeats=config.repeats,
                           warmup=config.warmup)
            latency = frontend.telemetry.request_latency
            per_workers[str(count)] = {
                "n_rows": n,
                "p50_ms": latency.percentile(50) * 1e3,
                "p99_ms": latency.percentile(99) * 1e3,
                "rows_per_s": n / wall.median_seconds,
                "wall_s": wall.median_seconds,
                "bit_identical": bit_identical,
                "shed": frontend.telemetry.shed,
                "errors": frontend.telemetry.errors,
            }
        finally:
            frontend.stop()
    return {
        "worker_counts": [int(c) for c in config.worker_counts],
        "batch_size": config.batch_size,
        "per_workers": per_workers,
        "bit_identical": all(
            entry["bit_identical"] for entry in per_workers.values()
        ),
        "repeats": config.repeats,
    }


def bench_metrics_overhead(config: ServingBenchConfig, registry,
                           request_rows: np.ndarray) -> dict:
    """Enabled-vs-disabled cost of the live telemetry plane.

    Two 2-worker front-ends score the same stream: one plain, one with
    the metrics slab and the full monitor set (score drift, calibration,
    SLO burn, health) attached.  Re-checks bit-identity and gates the
    enabled path's per-row cost against a <2% budget — observability
    must cost (almost) nothing and change nothing.

    The *gate* deliberately does not compare the two end-to-end walls:
    a 2000-row multi-process stream takes ~0.2 s and jitters by ±15% on
    a busy machine, so a 2% wall delta is unmeasurable (both walls are
    still reported for context).  Instead the per-row work the plane
    adds on the collector thread — the front-end's serialization point,
    so extra per-row work there is critical-path time at saturation —
    is timed deterministically in a tight loop over the exact monitor
    calls the resolve path makes, and compared to the plain front-end's
    per-row service time.  That ratio is stable, and a real regression
    trips it hard: the gate exists because the score-drift monitor once
    cost 16 µs/row (~18% of the wall) before its updates were chunked.
    """
    from repro.obs.live.health import HealthMonitor
    from repro.obs.live.monitors import (
        CalibrationMonitor, ScoreDriftMonitor, SLOConfig, SLOTracker,
    )
    from repro.serve.frontend import FrontendConfig, ScoringFrontend

    model = registry.load("champion")
    reference = model.predict_proba(request_rows)
    n = request_rows.shape[0]
    n_workers = 2
    repeats = max(config.repeats, 3)

    def make(live: bool) -> ScoringFrontend:
        kwargs = {}
        if live:
            kwargs = dict(
                score_drift=ScoreDriftMonitor(reference, window_rows=500),
                calibration=CalibrationMonitor(float(reference.mean())),
                slo_tracker=SLOTracker([
                    SLOConfig("admission", error_budget=0.01),
                    SLOConfig("latency", error_budget=0.05),
                ]),
                health_monitor=HealthMonitor(),
            )
        frontend = ScoringFrontend(
            model,
            FrontendConfig(n_workers=n_workers,
                           max_batch_size=config.batch_size,
                           max_queue=max(2 * n, 64),
                           live_metrics=live),
            **kwargs,
        )
        return frontend.start()

    def stream(frontend: ScoringFrontend) -> np.ndarray:
        results = frontend.score_stream(request_rows)
        return np.array([r.score for r in results])

    off_frontend = make(live=False)
    try:
        stream(off_frontend)                          # warm the pool
        off_wall = measure(lambda: stream(off_frontend), repeats=repeats,
                           warmup=0)
    finally:
        off_frontend.stop()
    on_frontend = make(live=True)
    try:
        on_scores = stream(on_frontend)
        on_wall = measure(lambda: stream(on_frontend), repeats=repeats,
                          warmup=0)
    finally:
        on_frontend.stop()

    # Deterministic per-row cost of the live resolve path: the same
    # observe() calls the collector makes per OK resolution.
    drift = ScoreDriftMonitor(reference, window_rows=500)
    calibration = CalibrationMonitor(float(reference.mean()))
    scores = [float(s) for s in reference]

    def live_row_path() -> None:
        for score in scores:
            drift.observe(score)
            calibration.observe(score)

    per_row = measure(live_row_path, repeats=repeats, warmup=1)
    monitor_us_per_row = per_row.best_seconds / n * 1e6
    service_us_per_row = off_wall.median_seconds / n * 1e6
    overhead_pct = monitor_us_per_row / service_us_per_row * 100.0
    return {
        "n_rows": n,
        "n_workers": n_workers,
        "plane_off_s": off_wall.median_seconds,
        "plane_on_s": on_wall.median_seconds,
        "monitor_us_per_row": monitor_us_per_row,
        "service_us_per_row": service_us_per_row,
        "overhead_pct": overhead_pct,
        "budget_pct": METRICS_OVERHEAD_BUDGET_PCT,
        "within_budget": bool(overhead_pct <= METRICS_OVERHEAD_BUDGET_PCT),
        "bit_identical": bool(np.array_equal(on_scores, reference)),
        "repeats": repeats,
    }


#: Scenario id -> runner, in report order.
SERVING_BENCHMARKS = {
    "micro_batching": bench_micro_batching,
    "cache_hot": bench_cache_hot,
    "registry_load": bench_registry_load,
    "workers": bench_workers,
    "metrics_overhead": bench_metrics_overhead,
}


def run_serving_suite(config: ServingBenchConfig | None = None,
                      only: list[str] | None = None,
                      tracer: Tracer | None = None,
                      model_path: str | pathlib.Path | None = None) -> dict:
    """Run the serving benchmarks and return JSON-compatible results.

    Args:
        config: Sizes/repeats; defaults to the tracked configuration.
        only: Optional subset of :data:`SERVING_BENCHMARKS` keys.
        tracer: Optional run tracer; each scenario runs inside a span and
            its result lands in a ``serving_bench`` event.
        model_path: Optional saved artifact to serve instead of training
            the fixture model (``serve-bench --model``; see
            :func:`_fixture`).

    Returns:
        Mapping scenario id -> result entry.
    """
    config = config or ServingBenchConfig()
    tracer = tracer if tracer is not None else NULL_TRACER
    names = list(SERVING_BENCHMARKS) if only is None else list(only)
    unknown = set(names) - set(SERVING_BENCHMARKS)
    if unknown:
        raise ValueError(f"unknown serving benchmarks: {sorted(unknown)}")
    results: dict = {}
    with tempfile.TemporaryDirectory() as tmp:
        with tracer.span("serving_fixture"):
            registry, request_rows = _fixture(
                config, pathlib.Path(tmp) / "reg", model_path=model_path
            )
        for name in names:
            with tracer.span(f"bench:{name}"):
                results[name] = SERVING_BENCHMARKS[name](
                    config, registry, request_rows
                )
            tracer.event("serving_bench", scenario=name, **results[name])
    return results


def write_serving_bench_json(
    path: str | pathlib.Path,
    results: dict,
    config: ServingBenchConfig,
) -> dict:
    """Write the tracked ``BENCH_serving.json`` payload and return it."""
    from repro.perfbench.suites import machine_info

    payload = {
        "format": SERVING_BENCH_FORMAT,
        "config": {
            "n_train": config.n_train,
            "n_score": config.n_score,
            "n_patterns": config.n_patterns,
            "batch_size": config.batch_size,
            "repeats": config.repeats,
            "worker_counts": [int(c) for c in config.worker_counts],
        },
        "machine": machine_info(),
        "benchmarks": results,
    }
    pathlib.Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def validate_serving_payload(payload: dict) -> list[str]:
    """Schema-check one ``BENCH_serving.json`` payload (CI gate).

    Returns a list of human-readable problems; an empty list means the
    payload is structurally sound.  Checked: format version, the
    presence/shape of every scenario that appears, and — for the
    ``workers`` scenario — that every swept count reports p50/p99
    latency, rows/sec and a bit-identity flag.
    """
    problems: list[str] = []
    if payload.get("format") != SERVING_BENCH_FORMAT:
        problems.append(
            f"format is {payload.get('format')!r}, "
            f"expected {SERVING_BENCH_FORMAT}"
        )
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, dict) or not benchmarks:
        return problems + ["benchmarks section missing or empty"]
    unknown = set(benchmarks) - set(SERVING_BENCHMARKS)
    if unknown:
        problems.append(f"unknown scenarios: {sorted(unknown)}")
    required_scalar = {
        "micro_batching": ("micro_batched_rows_per_s", "bit_identical"),
        "cache_hot": ("warm_s", "cold_s", "bit_identical"),
        "registry_load": ("median_s",),
        "metrics_overhead": ("plane_off_s", "plane_on_s",
                             "monitor_us_per_row", "service_us_per_row",
                             "overhead_pct", "budget_pct", "within_budget",
                             "bit_identical"),
    }
    for name, keys in required_scalar.items():
        entry = benchmarks.get(name)
        if entry is None:
            continue
        for key in keys:
            if key not in entry:
                problems.append(f"{name}: missing key {key!r}")
    workers = benchmarks.get("workers")
    if workers is not None:
        per_workers = workers.get("per_workers")
        if not isinstance(per_workers, dict) or not per_workers:
            problems.append("workers: per_workers missing or empty")
        else:
            for count, entry in per_workers.items():
                for key in ("p50_ms", "p99_ms", "rows_per_s",
                            "bit_identical"):
                    if key not in entry:
                        problems.append(
                            f"workers[{count}]: missing key {key!r}"
                        )
                if entry.get("bit_identical") is not True:
                    problems.append(
                        f"workers[{count}]: bit_identical is not true"
                    )
                p99 = entry.get("p99_ms")
                if not (isinstance(p99, (int, float)) and 0 < p99 < 60_000):
                    problems.append(
                        f"workers[{count}]: p99_ms {p99!r} fails sanity "
                        f"(0 < p99 < 60000 ms)"
                    )
        if "bit_identical" in workers and workers["bit_identical"] is not True:
            problems.append("workers: aggregate bit_identical is not true")
    overhead = benchmarks.get("metrics_overhead")
    if overhead is not None:
        if overhead.get("within_budget") is not True:
            problems.append(
                f"metrics_overhead: enabled plane costs "
                f"{overhead.get('overhead_pct')!r}% against a "
                f"{overhead.get('budget_pct')!r}% budget"
            )
        if overhead.get("bit_identical") is not True:
            problems.append("metrics_overhead: bit_identical is not true")
    return problems


def summarize_serving(results: dict) -> str:
    """Human-readable one-line-per-scenario rendering."""
    lines = []
    if "micro_batching" in results:
        entry = results["micro_batching"]
        lines.append(
            f"micro_batching   "
            f"{entry['micro_batched_rows_per_s']:10.0f} rows/s batched"
            f"   {entry['row_at_a_time_rows_per_s']:8.0f} rows/s looped"
            f"   speedup {entry['speedup_batched_vs_rows']:6.2f}x"
            f"   bit_identical={entry['bit_identical']}"
        )
    if "cache_hot" in results:
        entry = results["cache_hot"]
        lines.append(
            f"cache_hot        {entry['warm_s'] * 1e3:10.3f} ms warm"
            f"   {entry['cold_s'] * 1e3:8.3f} ms cold"
            f"   speedup {entry['speedup_warm_vs_cold']:6.2f}x"
            f"   bit_identical={entry['bit_identical']}"
        )
    if "registry_load" in results:
        entry = results["registry_load"]
        lines.append(
            f"registry_load    {entry['median_s'] * 1e3:10.3f} ms median"
        )
    if "workers" in results:
        for count, entry in sorted(results["workers"]["per_workers"].items(),
                                   key=lambda item: int(item[0])):
            lines.append(
                f"workers={count}        "
                f"{entry['rows_per_s']:10.0f} rows/s"
                f"   p50 {entry['p50_ms']:7.3f} ms"
                f"   p99 {entry['p99_ms']:7.3f} ms"
                f"   bit_identical={entry['bit_identical']}"
            )
    if "metrics_overhead" in results:
        entry = results["metrics_overhead"]
        lines.append(
            f"metrics_overhead {entry['overhead_pct']:10.2f} % per-row"
            f"   {entry['monitor_us_per_row']:8.2f} us/row"
            f"   budget {entry['budget_pct']:.1f}%"
            f"   within_budget={entry['within_budget']}"
            f"   bit_identical={entry['bit_identical']}"
        )
    return "\n".join(lines)
