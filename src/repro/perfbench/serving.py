"""Tracked serving benchmarks: micro-batching, caching, registry latency.

Three tracked numbers, written to ``BENCH_serving.json`` (run via
``python -m repro serve-bench``):

* ``micro_batching`` — scoring the same rows through the
  :class:`~repro.serve.service.ScoringService` micro-batch queue vs a
  row-at-a-time ``predict_proba`` loop on the same artifact.  Reports the
  throughput ratio and asserts the scores are **bit-identical** — the
  speedup is free of numerical drift by construction.
* ``cache_hot`` — re-scoring a recurring traffic pattern with the leaf
  cache warm vs cold (exactness again checked).
* ``registry_load`` — wall time of ``ModelRegistry.load("champion")``,
  the cost of a serving process (re)start or a promote-triggered reload.

The fixture artifact is a real (small) GBDT+LR pipeline trained on the
synthetic platform, stored in a temporary :class:`ModelRegistry`.
"""

from __future__ import annotations

import json
import pathlib
import tempfile
from dataclasses import dataclass

import numpy as np

from repro.obs.tracer import NULL_TRACER, Tracer
from repro.timing import measure

__all__ = [
    "ServingBenchConfig",
    "run_serving_suite",
    "summarize_serving",
    "write_serving_bench_json",
]

#: Format version of BENCH_serving.json.
SERVING_BENCH_FORMAT = 1


@dataclass(frozen=True)
class ServingBenchConfig:
    """Sizes and repetition counts of one serving-suite run.

    The default is the tracked configuration; :meth:`smoke` shrinks
    everything for CI rot-protection.

    Attributes:
        n_train: Rows of the synthetic platform the fixture model trains on.
        n_score: Request rows scored by each scenario.
        n_patterns: Distinct rows in the recurring-traffic cache scenario.
        batch_size: Micro-batch auto-flush threshold.
        n_epochs: LR-head epochs of the fixture model (quality irrelevant).
        repeats: Timing repeats per scenario (median reported).
        seed: Data/trainer seed.
    """

    n_train: int = 8_000
    n_score: int = 2_000
    n_patterns: int = 64
    batch_size: int = 256
    n_epochs: int = 10
    repeats: int = 3
    warmup: int = 1
    seed: int = 0

    @classmethod
    def smoke(cls) -> "ServingBenchConfig":
        """Tiny sizes: every scenario exercised once, nothing timed long."""
        return cls(n_train=1_500, n_score=200, n_patterns=16, batch_size=32,
                   n_epochs=2, repeats=1, warmup=0)


def _fixture(config: ServingBenchConfig, root: pathlib.Path,
             model_path: str | pathlib.Path | None = None):
    """Train a small pipeline, store it in a registry, return the pieces.

    With ``model_path`` set, no fixture is trained: the saved artifact
    (e.g. the scale benchmark's 1.4M-row model, via
    ``scale-bench --save-model``) is imported as champion instead, and
    request rows are generated at that model's feature width — the
    "does the ScoringService sustain the paper-scale model" mode.
    """
    from repro.baselines.erm import ERMTrainer
    from repro.data.generator import GeneratorConfig, LoanDataGenerator
    from repro.data.splits import temporal_split
    from repro.pipeline.pipeline import LoanDefaultPipeline
    from repro.serve.registry import ModelRegistry
    from repro.train.base import BaseTrainConfig

    if model_path is not None:
        registry = ModelRegistry(root)
        registry.import_file(model_path, metadata={"bench": "serving"},
                             slot="champion")
        model = registry.load("champion")
        # The artifact's binner fixes the raw feature width it scores.
        n_features = len(model.encoder.model.binner.bin_edges_)
        dataset = LoanDataGenerator(
            GeneratorConfig(
                n_samples=max(config.n_score, 2_000),
                total_features=n_features,
                n_spurious=min(8, max(1, n_features // 8)),
                seed=config.seed,
            )
        ).generate()
        rng = np.random.default_rng(config.seed)
        take = rng.choice(dataset.features.shape[0], size=config.n_score,
                          replace=True)
        return registry, np.ascontiguousarray(dataset.features[take])

    dataset = LoanDataGenerator(
        GeneratorConfig(n_samples=config.n_train, total_features=40,
                        n_spurious=4, seed=config.seed)
    ).generate()
    split = temporal_split(dataset)
    pipeline = LoanDefaultPipeline(
        ERMTrainer(BaseTrainConfig(n_epochs=config.n_epochs))
    )
    pipeline.fit(split.train)
    registry = ModelRegistry(root)
    registry.save(pipeline, metadata={"bench": "serving"})

    rng = np.random.default_rng(config.seed)
    rows = split.test.features
    take = rng.choice(rows.shape[0], size=config.n_score, replace=True)
    return registry, np.ascontiguousarray(rows[take])


def bench_micro_batching(config: ServingBenchConfig, registry,
                         request_rows: np.ndarray) -> dict:
    """Micro-batched service throughput vs a row-at-a-time loop."""
    from repro.serve.service import ScoringService, ServiceConfig

    model = registry.load("champion")

    def rows_loop() -> np.ndarray:
        return np.array(
            [model.predict_proba(row[None, :])[0] for row in request_rows]
        )

    def batched() -> np.ndarray:
        service = ScoringService(
            model, config=ServiceConfig(max_batch_size=config.batch_size)
        )
        tickets = [service.submit(row) for row in request_rows]
        service.flush()
        return np.array([t.score for t in tickets])

    row_scores = rows_loop()
    batch_scores = batched()
    bit_identical = bool(np.array_equal(row_scores, batch_scores))

    row_time = measure(rows_loop, repeats=config.repeats,
                       warmup=config.warmup)
    batch_time = measure(batched, repeats=config.repeats,
                         warmup=config.warmup)
    n = request_rows.shape[0]
    return {
        "n_rows": n,
        "batch_size": config.batch_size,
        "row_at_a_time_s": row_time.median_seconds,
        "micro_batched_s": batch_time.median_seconds,
        "row_at_a_time_rows_per_s": n / row_time.median_seconds,
        "micro_batched_rows_per_s": n / batch_time.median_seconds,
        "speedup_batched_vs_rows": (
            row_time.median_seconds / batch_time.median_seconds
            if batch_time.median_seconds > 0 else float("inf")
        ),
        "bit_identical": bit_identical,
        "repeats": config.repeats,
    }


def bench_cache_hot(config: ServingBenchConfig, registry,
                    request_rows: np.ndarray) -> dict:
    """Warm leaf-pattern cache vs cold scoring on recurring traffic."""
    from repro.serve.service import ScoringService, ServiceConfig

    model = registry.load("champion")
    # Recurring traffic: the request stream cycles over a few patterns.
    patterns = request_rows[:config.n_patterns]
    stream = patterns[
        np.tile(np.arange(config.n_patterns),
                max(1, config.n_score // config.n_patterns))
    ]

    def cold() -> np.ndarray:
        return model.predict_proba(stream)

    cached_service = ScoringService(
        model,
        config=ServiceConfig(max_batch_size=config.batch_size,
                             cache_size=4 * config.n_patterns),
    )
    cached_service.score_batch(stream)  # warm the cache

    def warm() -> np.ndarray:
        return cached_service.score_batch(stream)

    identical = bool(np.array_equal(cold(), warm()))
    cold_time = measure(cold, repeats=config.repeats, warmup=config.warmup)
    warm_time = measure(warm, repeats=config.repeats, warmup=config.warmup)
    return {
        "n_rows": int(stream.shape[0]),
        "n_patterns": config.n_patterns,
        "cold_s": cold_time.median_seconds,
        "warm_s": warm_time.median_seconds,
        "speedup_warm_vs_cold": (
            cold_time.median_seconds / warm_time.median_seconds
            if warm_time.median_seconds > 0 else float("inf")
        ),
        "bit_identical": identical,
        "hit_rate": cached_service._caches["champion"].hit_rate,
        "repeats": config.repeats,
    }


def bench_registry_load(config: ServingBenchConfig, registry,
                        request_rows: np.ndarray) -> dict:
    """Champion load latency: the cost of a serving (re)start."""
    del request_rows
    load_time = measure(lambda: registry.load("champion"),
                        repeats=max(config.repeats, 3),
                        warmup=config.warmup)
    return {
        "median_s": load_time.median_seconds,
        "best_s": load_time.best_seconds,
        "repeats": load_time.repeats,
    }


#: Scenario id -> runner, in report order.
SERVING_BENCHMARKS = {
    "micro_batching": bench_micro_batching,
    "cache_hot": bench_cache_hot,
    "registry_load": bench_registry_load,
}


def run_serving_suite(config: ServingBenchConfig | None = None,
                      only: list[str] | None = None,
                      tracer: Tracer | None = None,
                      model_path: str | pathlib.Path | None = None) -> dict:
    """Run the serving benchmarks and return JSON-compatible results.

    Args:
        config: Sizes/repeats; defaults to the tracked configuration.
        only: Optional subset of :data:`SERVING_BENCHMARKS` keys.
        tracer: Optional run tracer; each scenario runs inside a span and
            its result lands in a ``serving_bench`` event.
        model_path: Optional saved artifact to serve instead of training
            the fixture model (``serve-bench --model``; see
            :func:`_fixture`).

    Returns:
        Mapping scenario id -> result entry.
    """
    config = config or ServingBenchConfig()
    tracer = tracer if tracer is not None else NULL_TRACER
    names = list(SERVING_BENCHMARKS) if only is None else list(only)
    unknown = set(names) - set(SERVING_BENCHMARKS)
    if unknown:
        raise ValueError(f"unknown serving benchmarks: {sorted(unknown)}")
    results: dict = {}
    with tempfile.TemporaryDirectory() as tmp:
        with tracer.span("serving_fixture"):
            registry, request_rows = _fixture(
                config, pathlib.Path(tmp) / "reg", model_path=model_path
            )
        for name in names:
            with tracer.span(f"bench:{name}"):
                results[name] = SERVING_BENCHMARKS[name](
                    config, registry, request_rows
                )
            tracer.event("serving_bench", scenario=name, **results[name])
    return results


def write_serving_bench_json(
    path: str | pathlib.Path,
    results: dict,
    config: ServingBenchConfig,
) -> dict:
    """Write the tracked ``BENCH_serving.json`` payload and return it."""
    from repro.perfbench.suites import machine_info

    payload = {
        "format": SERVING_BENCH_FORMAT,
        "config": {
            "n_train": config.n_train,
            "n_score": config.n_score,
            "n_patterns": config.n_patterns,
            "batch_size": config.batch_size,
            "repeats": config.repeats,
        },
        "machine": machine_info(),
        "benchmarks": results,
    }
    pathlib.Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def summarize_serving(results: dict) -> str:
    """Human-readable one-line-per-scenario rendering."""
    lines = []
    if "micro_batching" in results:
        entry = results["micro_batching"]
        lines.append(
            f"micro_batching   "
            f"{entry['micro_batched_rows_per_s']:10.0f} rows/s batched"
            f"   {entry['row_at_a_time_rows_per_s']:8.0f} rows/s looped"
            f"   speedup {entry['speedup_batched_vs_rows']:6.2f}x"
            f"   bit_identical={entry['bit_identical']}"
        )
    if "cache_hot" in results:
        entry = results["cache_hot"]
        lines.append(
            f"cache_hot        {entry['warm_s'] * 1e3:10.3f} ms warm"
            f"   {entry['cold_s'] * 1e3:8.3f} ms cold"
            f"   speedup {entry['speedup_warm_vs_cold']:6.2f}x"
            f"   bit_identical={entry['bit_identical']}"
        )
    if "registry_load" in results:
        entry = results["registry_load"]
        lines.append(
            f"registry_load    {entry['median_s'] * 1e3:10.3f} ms median"
        )
    return "\n".join(lines)
