"""Paper-scale end-to-end benchmark: wall-clock and peak RSS by row count.

The paper's platform is 1.4M rows x 210 features; every other benchmark
in this repo runs at 8k-50k rows.  This suite measures the full
train -> leaf-encode -> LR-head pipeline at 100k / 500k / 1.4M rows
through the streaming path (:func:`repro.gbdt.pack_generated` +
:meth:`GBDTClassifier.fit_binned`), and records for each row count:

* per-stage and total wall-clock seconds,
* **measured** peak RSS (see :mod:`repro.perfbench.rss`) against the
  naive full-materialisation footprint (the ``(n, d)`` float64 matrix
  the one-shot path would allocate),
* the resident size of the packed uint8 dataset.

Each row count runs in a fresh *spawned* subprocess by default so its
``ru_maxrss`` high-water mark reflects that point alone — a long-lived
parent would carry the largest point's peak into every smaller one.

``dtype_tolerance_check`` is the float32 gate: it trains the same GBDT
under both dtypes and asserts AUC/KS agree within documented tolerances
(``AUC_TOLERANCE``/``KS_TOLERANCE``); CI fails the scale smoke when the
reduced-precision path drifts.  Results are written to the tracked
``BENCH_scale.json`` (regenerate with ``python -m repro scale-bench``).
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import asdict, dataclass

import numpy as np

__all__ = [
    "AUC_TOLERANCE",
    "KS_TOLERANCE",
    "ScaleBenchConfig",
    "dtype_tolerance_check",
    "run_scale_point",
    "run_scale_suite",
    "summarize_scale",
    "validate_scale_payload",
    "write_scale_bench_json",
]

#: Format version of BENCH_scale.json.
SCALE_BENCH_FORMAT = 1

#: Documented float32-vs-float64 tolerance on the held-out test metrics.
#: Reduced precision flips near-tied split choices (tree structures may
#: differ), so predictions are compared at the metric level, not
#: pointwise; see docs/performance.md.
AUC_TOLERANCE = 0.015
KS_TOLERANCE = 0.03


@dataclass(frozen=True)
class ScaleBenchConfig:
    """Sizes of one scale-suite run.

    The default is the tracked configuration (paper dimensions at three
    row counts); :meth:`smoke` shrinks it to a CI-sized single point.

    Attributes:
        row_counts: Row counts measured, each in its own subprocess.
        total_features: Feature width (paper: 210).
        n_spurious: Spurious-feature count of the generator.
        chunk_rows: Streaming chunk size for both generator passes.
        max_bins: Histogram resolution.
        n_trees: Boosting rounds (kept small: the suite tracks scaling
            shape, not model quality).
        max_leaves: Leaf budget per tree.
        dtype: GBDT hot-path dtype ("float32" is the paper-scale mode).
        sample_rows: Binner reservoir capacity (raw-row memory bound).
        lr_epochs: LR-head epochs over the encoded environments.
        seed: Generator seed.
    """

    row_counts: tuple[int, ...] = (100_000, 500_000, 1_400_000)
    total_features: int = 210
    n_spurious: int = 16
    chunk_rows: int = 100_000
    max_bins: int = 64
    n_trees: int = 10
    max_leaves: int = 31
    dtype: str = "float32"
    sample_rows: int = 200_000
    lr_epochs: int = 5
    seed: int = 20230612

    @classmethod
    def smoke(cls) -> "ScaleBenchConfig":
        """CI-sized: one 20k-row point, narrow features, tiny ensemble."""
        return cls(row_counts=(20_000,), total_features=40, n_spurious=4,
                   chunk_rows=4_096, max_bins=32, n_trees=3, max_leaves=15,
                   sample_rows=20_000, lr_epochs=2)


def _gbdt_params(config: ScaleBenchConfig):
    from repro.gbdt.boosting import GBDTParams
    from repro.gbdt.tree import TreeParams

    return GBDTParams(
        n_trees=config.n_trees,
        max_bins=config.max_bins,
        dtype=config.dtype,
        tree=TreeParams(max_leaves=config.max_leaves),
    )


def run_scale_point(
    n_rows: int,
    config: ScaleBenchConfig,
    save_model: str | None = None,
) -> dict:
    """Run the full pipeline at one row count and measure it.

    Runs in the *current* process; :func:`run_scale_suite` wraps it in a
    subprocess so ``peak_rss_bytes`` is this point's own high-water mark.

    Args:
        n_rows: Platform size to generate/train at.
        config: Suite configuration (feature width, model sizes, dtype).
        save_model: Optional path; when set, the trained GBDT+LR pipeline
            is saved as a serving artifact (``ModelRegistry.save_file``
            format) for ``serve-bench --model``.

    Returns:
        JSON-compatible dict of timings, sizes and peak memory.
    """
    from repro.baselines.erm import ERMTrainer
    from repro.data.dataset import EnvironmentData
    from repro.data.generator import GeneratorConfig, LoanDataGenerator
    from repro.gbdt.boosting import GBDTClassifier
    from repro.gbdt.leaf_encoder import LeafIndexEncoder
    from repro.gbdt.packing import pack_generated
    from repro.perfbench.rss import PeakMemoryProbe
    from repro.train.base import BaseTrainConfig

    generator = LoanDataGenerator(GeneratorConfig(
        n_samples=n_rows,
        total_features=config.total_features,
        n_spurious=config.n_spurious,
        seed=config.seed,
    ))
    d = generator.schema.n_features

    with PeakMemoryProbe() as probe:
        t0 = time.perf_counter()
        packed = pack_generated(
            generator,
            chunk_rows=config.chunk_rows,
            max_bins=config.max_bins,
            sample_rows=config.sample_rows,
        )
        t_pack = time.perf_counter()

        model = GBDTClassifier(_gbdt_params(config)).fit_binned(
            packed.binned, packed.labels, packed.binner
        )
        t_fit = time.perf_counter()

        encoder = LeafIndexEncoder(model)
        leaves = model.predict_leaves_binned(packed.binned)
        design = encoder.encode_leaves(leaves)
        t_encode = time.perf_counter()

        labels = packed.labels
        environments = []
        for name in packed.province_names:
            rows = packed.rows_for_province(name)
            if rows.size:
                environments.append(
                    EnvironmentData(name, design[rows], labels[rows])
                )
        trainer = ERMTrainer(BaseTrainConfig(n_epochs=config.lr_epochs))
        result = trainer.fit(environments)
        t_head = time.perf_counter()

    if save_model is not None:
        _save_scale_artifact(model, encoder, trainer, result,
                             n_rows, config, save_model)

    packed_bytes = packed.nbytes
    packed.dispose()
    naive_bytes = n_rows * d * np.dtype(np.float64).itemsize
    entry = {
        "n_rows": n_rows,
        "n_features": d,
        "dtype": config.dtype,
        "chunk_rows": config.chunk_rows,
        "generate_pack_s": t_pack - t0,
        "gbdt_fit_s": t_fit - t_pack,
        "leaf_encode_s": t_encode - t_fit,
        "lr_head_s": t_head - t_encode,
        "total_s": t_head - t0,
        "rows_per_s": n_rows / (t_head - t0) if t_head > t0 else float("inf"),
        "packed_bytes": packed_bytes,
        "design_nnz": int(design.nnz),
        "design_index_dtype": str(design.indices.dtype),
        "naive_materialised_bytes": naive_bytes,
        "peak_rss_bytes": probe.peak_bytes,
        "rss_source": probe.source,
        "rss_below_naive": (
            probe.peak_bytes is not None and probe.peak_bytes < naive_bytes
        ),
        "n_environments": len(environments),
    }
    if save_model is not None:
        entry["saved_model"] = save_model
    return entry


def _save_scale_artifact(model, encoder, trainer, result,
                         n_rows: int, config: ScaleBenchConfig,
                         path: str) -> None:
    """Persist the scale-trained GBDT+LR as a normal serving artifact."""
    from repro.pipeline.extractor import GBDTFeatureExtractor
    from repro.pipeline.pipeline import LoanDefaultPipeline
    from repro.serve.registry import ModelRegistry

    extractor = GBDTFeatureExtractor(params=model.params)
    extractor.model_ = model
    extractor.encoder_ = encoder
    pipeline = LoanDefaultPipeline(trainer, extractor=extractor)
    pipeline.result_ = result
    ModelRegistry.save_file(pipeline, path, metadata={
        "bench": "scale",
        "scale_rows": n_rows,
        "dtype": config.dtype,
        "total_features": config.total_features,
    })


def _scale_point_entry(n_rows: int, config_fields: dict,
                       save_model: str | None, pipe) -> None:
    """Subprocess entry: run one point and ship the result back."""
    config = ScaleBenchConfig(**config_fields)
    try:
        pipe.send(run_scale_point(n_rows, config, save_model=save_model))
    except BaseException as exc:  # surface child failures to the parent
        pipe.send({"error": f"{type(exc).__name__}: {exc}"})
        raise
    finally:
        pipe.close()


def run_scale_suite(
    config: ScaleBenchConfig | None = None,
    isolate: bool = True,
    save_model: str | None = None,
) -> dict:
    """Measure every configured row count, smallest first.

    Args:
        config: Sizes; defaults to the tracked configuration.
        isolate: Run each point in a fresh spawned subprocess (the
            default) so peak RSS is per-point.  ``False`` runs in-process
            — faster for smoke tests, but ``ru_maxrss`` then reports the
            parent's lifetime peak (entries are marked ``isolated``).
        save_model: Optional artifact path; the *largest* row count's
            trained pipeline is saved there for ``serve-bench --model``.

    Returns:
        Mapping ``str(n_rows)`` -> point entry.
    """
    config = config or ScaleBenchConfig()
    results: dict = {}
    largest = max(config.row_counts)
    for n_rows in sorted(config.row_counts):
        target = save_model if (save_model and n_rows == largest) else None
        if isolate:
            entry = _run_point_isolated(n_rows, config, target)
        else:
            entry = run_scale_point(n_rows, config, save_model=target)
        entry["isolated"] = isolate
        results[str(n_rows)] = entry
    return results


def _run_point_isolated(n_rows: int, config: ScaleBenchConfig,
                        save_model: str | None) -> dict:
    import multiprocessing as mp

    ctx = mp.get_context("spawn")
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    process = ctx.Process(
        target=_scale_point_entry,
        args=(n_rows, asdict(config), save_model, child_conn),
    )
    process.start()
    child_conn.close()
    try:
        entry = parent_conn.recv()
    except EOFError:
        process.join()
        raise RuntimeError(
            f"scale point n_rows={n_rows} died without a result "
            f"(exit code {process.exitcode})"
        ) from None
    finally:
        parent_conn.close()
    process.join()
    if "error" in entry:
        raise RuntimeError(
            f"scale point n_rows={n_rows} failed: {entry['error']}"
        )
    return entry


def dtype_tolerance_check(config: ScaleBenchConfig | None = None) -> dict:
    """Train float32 vs float64 GBDTs and compare held-out AUC/KS.

    The gate behind the reduced-precision mode: both dtypes train on the
    same temporal split and must agree within :data:`AUC_TOLERANCE` /
    :data:`KS_TOLERANCE` on the 2020 test year.  Runs at the smallest
    configured row count (capped at 50k — the check is about numerics,
    not scale).
    """
    from repro.data.generator import GeneratorConfig, LoanDataGenerator
    from repro.data.splits import temporal_split
    from repro.gbdt.boosting import GBDTClassifier
    from repro.metrics import auc_score, ks_score
    import dataclasses

    config = config or ScaleBenchConfig()
    n_rows = min(min(config.row_counts), 50_000)
    dataset = LoanDataGenerator(GeneratorConfig(
        n_samples=n_rows,
        total_features=config.total_features,
        n_spurious=config.n_spurious,
        seed=config.seed,
    )).generate()
    split = temporal_split(dataset)

    metrics: dict = {}
    for dtype in ("float64", "float32"):
        params = dataclasses.replace(_gbdt_params(config), dtype=dtype)
        model = GBDTClassifier(params).fit(
            split.train.features, split.train.labels
        )
        scores = model.predict_proba(split.test.features)
        metrics[dtype] = {
            "auc": float(auc_score(split.test.labels, scores)),
            "ks": float(ks_score(split.test.labels, scores)),
        }
    auc_delta = abs(metrics["float64"]["auc"] - metrics["float32"]["auc"])
    ks_delta = abs(metrics["float64"]["ks"] - metrics["float32"]["ks"])
    return {
        "n_rows": n_rows,
        "float64": metrics["float64"],
        "float32": metrics["float32"],
        "auc_delta": auc_delta,
        "ks_delta": ks_delta,
        "auc_tolerance": AUC_TOLERANCE,
        "ks_tolerance": KS_TOLERANCE,
        "passed": bool(auc_delta <= AUC_TOLERANCE
                       and ks_delta <= KS_TOLERANCE),
    }


def write_scale_bench_json(
    path: str | pathlib.Path,
    results: dict,
    config: ScaleBenchConfig,
    tolerance: dict,
) -> dict:
    """Write the tracked ``BENCH_scale.json`` payload and return it."""
    from repro.perfbench.suites import machine_info

    payload = {
        "format": SCALE_BENCH_FORMAT,
        "config": asdict(config),
        "machine": machine_info(),
        "tolerance": tolerance,
        "benchmarks": results,
    }
    pathlib.Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return payload


#: Fields every point entry must carry, with their required types.
_POINT_FIELDS = {
    "n_rows": int,
    "n_features": int,
    "dtype": str,
    "generate_pack_s": float,
    "gbdt_fit_s": float,
    "leaf_encode_s": float,
    "lr_head_s": float,
    "total_s": float,
    "packed_bytes": int,
    "naive_materialised_bytes": int,
    "rss_source": str,
    "rss_below_naive": bool,
    "isolated": bool,
}


def validate_scale_payload(payload: dict) -> None:
    """Schema-check one BENCH_scale.json payload; raises ``ValueError``.

    Used by the CI smoke step so a refactor cannot silently turn the
    tracked artifact into garbage.
    """
    problems: list[str] = []
    if payload.get("format") != SCALE_BENCH_FORMAT:
        problems.append(f"format != {SCALE_BENCH_FORMAT}")
    for key in ("config", "machine", "tolerance", "benchmarks"):
        if key not in payload:
            problems.append(f"missing top-level key {key!r}")
    tolerance = payload.get("tolerance", {})
    if "passed" not in tolerance:
        problems.append("tolerance.passed missing")
    benchmarks = payload.get("benchmarks", {})
    if not benchmarks:
        problems.append("no benchmark points")
    for n_rows, entry in benchmarks.items():
        for field, kind in _POINT_FIELDS.items():
            if field not in entry:
                problems.append(f"point {n_rows}: missing {field!r}")
            elif kind is float:
                if not isinstance(entry[field], (int, float)):
                    problems.append(f"point {n_rows}: {field!r} not numeric")
            elif not isinstance(entry[field], kind):
                problems.append(f"point {n_rows}: {field!r} not {kind.__name__}")
        peak = entry.get("peak_rss_bytes")
        if peak is not None and peak <= 0:
            problems.append(f"point {n_rows}: peak_rss_bytes <= 0")
    if problems:
        raise ValueError(
            "invalid BENCH_scale.json payload: " + "; ".join(problems)
        )


def summarize_scale(results: dict) -> str:
    """Human-readable one-line-per-row-count rendering."""
    lines = []
    for n_rows in sorted(results, key=int):
        entry = results[n_rows]
        peak = entry.get("peak_rss_bytes")
        peak_mb = f"{peak / 2**20:8.0f} MB" if peak else "     n/a"
        naive_mb = entry["naive_materialised_bytes"] / 2**20
        lines.append(
            f"{int(n_rows):>9,d} rows  total {entry['total_s']:8.2f} s"
            f"  (pack {entry['generate_pack_s']:6.2f}"
            f"  fit {entry['gbdt_fit_s']:6.2f}"
            f"  encode {entry['leaf_encode_s']:6.2f}"
            f"  head {entry['lr_head_s']:6.2f})"
            f"  peak {peak_mb} vs naive {naive_mb:6.0f} MB"
            f"  [{entry['rss_source']}]"
        )
    return "\n".join(lines)
