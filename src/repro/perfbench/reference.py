"""The seed (pre-vectorisation) GBDT kernels, preserved verbatim.

These are the implementations the repo shipped with before the fused-index
histogram, flattened-tree routing, and direct-CSR encoding landed: Python
loops over features, per-node boolean masks, a COO round-trip, and a
``binned[:, cols]`` copy on every boosting round and every predict call.

They serve two purposes and must not be "improved":

* **Golden equivalence** — the test suite asserts the vectorised kernels
  reproduce these bit-for-bit (same splits, leaf indices, probabilities).
* **Benchmark baseline** — ``BENCH_gbdt.json`` reports every speedup as
  seed time / vectorised time.
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np
from scipy import sparse

from repro.gbdt.binning import QuantileBinner
from repro.gbdt.boosting import GBDTParams
from repro.gbdt.histogram import NodeHistogram
from repro.gbdt.tree import DecisionTree, SplitInfo, TreeParams, _Node
from repro.numerics import binary_cross_entropy, sigmoid

__all__ = [
    "build_histogram_seed",
    "best_split_seed",
    "predict_leaf_seed",
    "encode_leaves_seed",
    "SeedDecisionTree",
    "SeedGBDT",
]


def build_histogram_seed(
    binned: np.ndarray,
    gradients: np.ndarray,
    hessians: np.ndarray,
    sample_indices: np.ndarray,
    max_bins: int,
) -> NodeHistogram:
    """Seed histogram build: one ``np.bincount`` per feature."""
    n_features = binned.shape[1]
    grad = np.zeros((n_features, max_bins))
    hess = np.zeros((n_features, max_bins))
    count = np.zeros((n_features, max_bins))
    node_bins = binned[sample_indices]
    node_grad = gradients[sample_indices]
    node_hess = hessians[sample_indices]
    for f in range(n_features):
        bins_f = node_bins[:, f]
        grad[f] = np.bincount(bins_f, weights=node_grad, minlength=max_bins)
        hess[f] = np.bincount(bins_f, weights=node_hess, minlength=max_bins)
        count[f] = np.bincount(bins_f, minlength=max_bins)
    return NodeHistogram(grad=grad, hess=hess, count=count)


def best_split_seed(params: TreeParams, node: _Node) -> SplitInfo | None:
    """Seed split search: scan the histogram one feature at a time.

    This is the pre-vectorisation ``DecisionTree._best_split`` preserved
    verbatim — a Python loop over features, each evaluating its own 1-D
    prefix sums, per-feature argmax and running-best comparison.  The
    live 2-D implementation must reproduce its (feature, bin, gain)
    choice bit-for-bit, ties and all-invalid nodes included.
    """
    if params.max_depth >= 0 and node.depth >= params.max_depth:
        return None
    hist = node.histogram
    total_grad = hist.total_grad
    total_hess = hist.total_hess
    total_count = hist.total_count
    if total_count < 2 * params.min_child_samples:
        return None
    parent_score = total_grad**2 / (total_hess + params.reg_lambda)

    best: SplitInfo | None = None
    left_grad = np.cumsum(hist.grad, axis=1)
    left_hess = np.cumsum(hist.hess, axis=1)
    left_count = np.cumsum(hist.count, axis=1)
    for f in range(hist.grad.shape[0]):
        lg = left_grad[f, :-1]
        lh = left_hess[f, :-1]
        lc = left_count[f, :-1]
        rg = total_grad - lg
        rh = total_hess - lh
        rc = total_count - lc
        valid = (
            (lc >= params.min_child_samples)
            & (rc >= params.min_child_samples)
            & (lh >= params.min_child_hessian)
            & (rh >= params.min_child_hessian)
        )
        if not np.any(valid):
            continue
        gains = np.full(lg.shape, -np.inf)
        gains[valid] = (
            lg[valid] ** 2 / (lh[valid] + params.reg_lambda)
            + rg[valid] ** 2 / (rh[valid] + params.reg_lambda)
            - parent_score
        )
        b = int(np.argmax(gains))
        if gains[b] <= params.min_split_gain:
            continue
        if best is None or gains[b] > best.gain:
            best = SplitInfo(
                feature=f,
                bin_threshold=b,
                gain=float(gains[b]),
                left_grad=float(lg[b]),
                left_hess=float(lh[b]),
                left_count=int(lc[b]),
            )
    return best


def predict_leaf_seed(tree: DecisionTree, binned: np.ndarray) -> np.ndarray:
    """Seed leaf routing: ``O(n_nodes × n)`` per-node mask loop.

    Works on any fitted :class:`DecisionTree` (or seed tree) via its node
    list; ``binned`` must be in the tree's own feature space.
    """
    nodes = tree._nodes
    if not nodes:
        raise RuntimeError("tree is not fitted")
    n = binned.shape[0]
    current = np.zeros(n, dtype=np.int64)
    # Children always have larger ids than their parent, so a single
    # in-order pass routes every row to its leaf.
    for node in nodes:
        if node.is_leaf:
            continue
        here = current == node.node_id
        if not np.any(here):
            continue
        goes_left = binned[here, node.feature] <= node.bin_threshold
        dest = np.where(goes_left, node.left, node.right)
        current[here] = dest
    leaf_index_of_node = np.array(
        [node.leaf_index for node in nodes], dtype=np.int64
    )
    return leaf_index_of_node[current]


def encode_leaves_seed(
    leaf_matrix: np.ndarray, offsets: np.ndarray
) -> sparse.csr_matrix:
    """Seed multi-hot encoding: build COO triplets, convert to CSR."""
    n, n_trees = leaf_matrix.shape
    cols = (leaf_matrix + offsets[:-1][None, :]).ravel()
    rows = np.repeat(np.arange(n), n_trees)
    data = np.ones(cols.size)
    return sparse.csr_matrix(
        (data, (rows, cols)), shape=(n, int(offsets[-1]))
    )


class SeedDecisionTree:
    """The seed leaf-wise tree: loop histograms, sliced-matrix fitting.

    Structurally identical growth logic to :class:`DecisionTree` but backed
    by :func:`build_histogram_seed` and :func:`predict_leaf_seed`; exposes
    the same ``_nodes`` list so trees can be compared node-by-node.
    """

    def __init__(self, params: TreeParams | None = None):
        self.params = params or TreeParams()
        self._nodes: list[_Node] = []
        self._n_leaves = 0

    @property
    def n_leaves(self) -> int:
        return self._n_leaves

    def fit(
        self,
        binned: np.ndarray,
        gradients: np.ndarray,
        hessians: np.ndarray,
        max_bins: int,
        sample_indices: np.ndarray | None = None,
    ) -> "SeedDecisionTree":
        if sample_indices is None:
            sample_indices = np.arange(binned.shape[0])
        if sample_indices.size == 0:
            raise ValueError("cannot fit a tree on zero samples")
        self._nodes = []
        self._n_leaves = 0
        self._max_bins = max_bins

        root_hist = build_histogram_seed(binned, gradients, hessians,
                                         sample_indices, max_bins)
        root = _Node(node_id=0, depth=0, sample_indices=sample_indices,
                     histogram=root_hist)
        self._nodes.append(root)

        heap: list[tuple[float, int, int, SplitInfo]] = []
        tiebreak = itertools.count()

        def push_candidate(node: _Node) -> None:
            split = best_split_seed(self.params, node)
            if split is not None:
                heapq.heappush(heap, (-split.gain, next(tiebreak),
                                      node.node_id, split))

        push_candidate(root)
        n_leaves = 1
        while heap and n_leaves < self.params.max_leaves:
            _, __, node_id, split = heapq.heappop(heap)
            node = self._nodes[node_id]
            left, right = self._apply_split(node, split, binned, gradients,
                                            hessians)
            n_leaves += 1
            push_candidate(left)
            push_candidate(right)

        DecisionTree._finalize_leaves(self)
        return self

    def _apply_split(
        self,
        node: _Node,
        split: SplitInfo,
        binned: np.ndarray,
        gradients: np.ndarray,
        hessians: np.ndarray,
    ) -> tuple[_Node, _Node]:
        rows = node.sample_indices
        goes_left = binned[rows, split.feature] <= split.bin_threshold
        left_rows = rows[goes_left]
        right_rows = rows[~goes_left]

        if left_rows.size <= right_rows.size:
            left_hist = build_histogram_seed(binned, gradients, hessians,
                                             left_rows, self._max_bins)
            right_hist = node.histogram.subtract(left_hist)
        else:
            right_hist = build_histogram_seed(binned, gradients, hessians,
                                              right_rows, self._max_bins)
            left_hist = node.histogram.subtract(right_hist)

        left = _Node(node_id=len(self._nodes), depth=node.depth + 1,
                     sample_indices=left_rows, histogram=left_hist)
        self._nodes.append(left)
        right = _Node(node_id=len(self._nodes), depth=node.depth + 1,
                      sample_indices=right_rows, histogram=right_hist)
        self._nodes.append(right)

        node.feature = split.feature
        node.bin_threshold = split.bin_threshold
        node.left = left.node_id
        node.right = right.node_id
        node.sample_indices = np.empty(0, dtype=np.int64)
        return left, right

    def predict_leaf(self, binned: np.ndarray) -> np.ndarray:
        return predict_leaf_seed(self, binned)

    def predict_value(self, binned: np.ndarray) -> np.ndarray:
        leaf_values = np.array(
            [node.value for node in self._nodes if node.is_leaf]
        )
        return leaf_values[self.predict_leaf(binned)]


class SeedGBDT:
    """The seed boosting loop: unsorted bagging, per-round matrix copies.

    A faithful reduction of the seed ``GBDTClassifier.fit``/predict paths,
    kept for golden equivalence against the copy-free vectorised ensemble.
    """

    def __init__(self, params: GBDTParams | None = None):
        self.params = params or GBDTParams()
        self.binner = QuantileBinner(max_bins=self.params.max_bins)
        self.trees_: list[SeedDecisionTree] = []
        self.tree_feature_subsets_: list[np.ndarray] = []
        self.base_score_: float = 0.0
        self.train_losses_: list[float] = []
        self.valid_losses_: list[float] = []

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        valid_features: np.ndarray | None = None,
        valid_labels: np.ndarray | None = None,
    ) -> "SeedGBDT":
        labels = np.asarray(labels, dtype=np.float64).ravel()
        features = np.asarray(features, dtype=np.float64)
        params = self.params
        rng = np.random.default_rng(params.seed)
        binned = self.binner.fit_transform(features)
        n, d = binned.shape

        use_valid = valid_features is not None
        if use_valid:
            valid_labels = np.asarray(valid_labels, dtype=np.float64).ravel()
            valid_binned = self.binner.transform(
                np.asarray(valid_features, dtype=np.float64)
            )

        prior = float(np.clip(labels.mean(), 1e-6, 1 - 1e-6))
        self.base_score_ = float(np.log(prior / (1.0 - prior)))
        raw = np.full(n, self.base_score_)
        if use_valid:
            valid_raw = np.full(valid_labels.shape[0], self.base_score_)

        best_valid = np.inf
        rounds_since_best = 0
        for _ in range(params.n_trees):
            prob = sigmoid(raw)
            gradients = prob - labels
            hessians = np.maximum(prob * (1.0 - prob), 1e-12)

            row_subset = None
            if params.subsample < 1.0:
                size = max(1, int(round(params.subsample * n)))
                row_subset = rng.choice(n, size=size, replace=False)
            col_subset = np.arange(d)
            if params.colsample < 1.0:
                size = max(1, int(round(params.colsample * d)))
                col_subset = np.sort(rng.choice(d, size=size, replace=False))

            tree = SeedDecisionTree(params.tree)
            tree.fit(
                binned[:, col_subset],
                gradients,
                hessians,
                max_bins=params.max_bins,
                sample_indices=row_subset,
            )
            self.trees_.append(tree)
            self.tree_feature_subsets_.append(col_subset)

            raw += params.learning_rate * tree.predict_value(
                binned[:, col_subset]
            )
            self.train_losses_.append(binary_cross_entropy(labels, sigmoid(raw)))

            if use_valid:
                valid_raw += params.learning_rate * tree.predict_value(
                    valid_binned[:, col_subset]
                )
                valid_loss = binary_cross_entropy(valid_labels,
                                                  sigmoid(valid_raw))
                self.valid_losses_.append(valid_loss)
                if valid_loss < best_valid - 1e-9:
                    best_valid = valid_loss
                    rounds_since_best = 0
                elif params.early_stopping_rounds:
                    rounds_since_best += 1
                    if rounds_since_best >= params.early_stopping_rounds:
                        break
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        binned = self.binner.transform(np.asarray(features, dtype=np.float64))
        raw = np.full(binned.shape[0], self.base_score_)
        for tree, cols in zip(self.trees_, self.tree_feature_subsets_):
            raw += self.params.learning_rate * tree.predict_value(
                binned[:, cols]
            )
        return raw

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        return sigmoid(self.decision_function(features))

    def predict_leaves(self, features: np.ndarray) -> np.ndarray:
        binned = self.binner.transform(np.asarray(features, dtype=np.float64))
        leaves = np.empty((binned.shape[0], len(self.trees_)), dtype=np.int64)
        for t, (tree, cols) in enumerate(
            zip(self.trees_, self.tree_feature_subsets_)
        ):
            leaves[:, t] = tree.predict_leaf(binned[:, cols])
        return leaves
