"""Parallel-scaling benchmark: the experiment fan-out, serial vs pools.

Times the same trainer×seed grid through
:meth:`~repro.experiments.runner.ExperimentContext.score_methods` at
``n_jobs=1`` and at each configured worker count, asserting along the way
that every parallel run returns **bit-identical** :class:`MethodScores`
— the speedup is only worth tracking if the answers don't move.  The
payload lands in tracked ``BENCH_parallel.json`` next to the ``tree_fit``
single-kernel number, with the machine's *effective* CPU count recorded
so a 1-core container honestly showing ~1.0x is distinguishable from a
regression on a real multi-core runner.
"""

from __future__ import annotations

import json
import pathlib
import statistics
import time
from dataclasses import dataclass

from repro.experiments.runner import ExperimentContext, ExperimentSettings
from repro.perfbench.suites import (
    BenchConfig,
    bench_tree_fit,
    machine_info,
)
from repro.train.registry import TrainerSpec

__all__ = [
    "ParallelBenchConfig",
    "run_parallel_suite",
    "summarize_parallel",
    "write_parallel_bench_json",
]

#: Format version of BENCH_parallel.json.
PARALLEL_BENCH_FORMAT = 1


@dataclass(frozen=True)
class ParallelBenchConfig:
    """Sizes of one parallel-scaling run.

    The default is the tracked configuration: four methods × three seeds
    gives a 12-task grid — enough to keep 8 workers busy without making
    the serial baseline take minutes.  :meth:`smoke` shrinks the data and
    epoch budget for CI rot-protection.

    Attributes:
        n_samples: Synthetic platform size.
        data_seed: Platform seed.
        trainer_seeds: Per-method repeats (entropy labels; actual RNG
            seeds are spawned by the runner).
        methods: Registry names forming the grid's method axis.
        worker_counts: Pool sizes to compare against the serial run.
        trainer_overrides: Config overrides applied to every method's
            spec (the smoke config caps epochs here).
        repeats: Timing repeats per point; median is reported.
        tree_bench: Sizes of the accompanying ``tree_fit`` kernel
            benchmark (defaults to the ``BENCH_gbdt.json`` tracked
            configuration so the two files stay comparable).
    """

    n_samples: int = 20_000
    data_seed: int = 7
    trainer_seeds: tuple[int, ...] = (0, 1, 2)
    methods: tuple[str, ...] = ("ERM", "V-REx", "meta-IRM", "LightMIRM")
    worker_counts: tuple[int, ...] = (2, 4, 8)
    trainer_overrides: tuple[tuple[str, object], ...] = ()
    repeats: int = 1
    tree_bench: BenchConfig = BenchConfig()

    @classmethod
    def smoke(cls) -> "ParallelBenchConfig":
        """Tiny grid: every path exercised once, nothing timed long."""
        return cls(
            n_samples=2_000,
            trainer_seeds=(0, 1),
            methods=("ERM", "LightMIRM"),
            worker_counts=(2,),
            trainer_overrides=(("n_epochs", 2),),
            tree_bench=BenchConfig.smoke(),
        )


def _timed(fn, repeats: int) -> tuple[object, float, float]:
    """(last result, median seconds, best seconds) over ``repeats`` runs."""
    times = []
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return result, float(statistics.median(times)), float(min(times))


def run_parallel_suite(config: ParallelBenchConfig | None = None) -> dict:
    """Run the scaling comparison and return its JSON-compatible results.

    Returns:
        ``{"fan_out": ..., "tree_fit": ...}`` where ``fan_out`` holds the
        serial time, one entry per worker count (seconds, speedup and the
        per-count ``bit_identical`` flag) and the grid description, and
        ``tree_fit`` is the tracked single-tree kernel benchmark at the
        same configuration ``BENCH_gbdt.json`` uses.
    """
    config = config or ParallelBenchConfig()
    context = ExperimentContext(
        ExperimentSettings(
            n_samples=config.n_samples,
            data_seed=config.data_seed,
            trainer_seeds=config.trainer_seeds,
        )
    )
    # Materialise the cached stages (generation, split, GBDT encoding)
    # before timing — they are shared overhead, not fan-out work.
    context.train_environments, context.test_environments
    overrides = dict(config.trainer_overrides)
    methods = [
        (name, TrainerSpec.of(name, **overrides)) for name in config.methods
    ]

    serial_scores, serial_median, serial_best = _timed(
        lambda: context.score_methods(methods, n_jobs=1), config.repeats
    )
    workers: dict[str, dict] = {}
    all_identical = True
    for count in config.worker_counts:
        scores, median_s, best_s = _timed(
            lambda: context.score_methods(methods, n_jobs=count),
            config.repeats,
        )
        identical = scores == serial_scores
        all_identical &= identical
        workers[str(count)] = {
            "seconds": median_s,
            "best_s": best_s,
            "speedup_vs_serial": (
                serial_median / median_s if median_s > 0 else float("inf")
            ),
            "bit_identical": identical,
        }
    fan_out = {
        "methods": list(config.methods),
        "trainer_seeds": list(config.trainer_seeds),
        "n_tasks": len(config.methods) * len(config.trainer_seeds),
        "n_samples": config.n_samples,
        "serial_s": serial_median,
        "serial_best_s": serial_best,
        "workers": workers,
        "bit_identical": all_identical,
    }
    return {"fan_out": fan_out, "tree_fit": bench_tree_fit(config.tree_bench)}


def write_parallel_bench_json(
    path: str | pathlib.Path,
    results: dict,
    config: ParallelBenchConfig,
) -> dict:
    """Write the tracked ``BENCH_parallel.json`` payload and return it."""
    payload = {
        "format": PARALLEL_BENCH_FORMAT,
        "config": {
            "n_samples": config.n_samples,
            "trainer_seeds": list(config.trainer_seeds),
            "methods": list(config.methods),
            "worker_counts": list(config.worker_counts),
            "repeats": config.repeats,
        },
        "machine": machine_info(),
        "benchmarks": results,
    }
    pathlib.Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def summarize_parallel(results: dict) -> str:
    """Human-readable rendering of one scaling run."""
    fan_out = results["fan_out"]
    lines = [
        f"fan-out: {fan_out['n_tasks']} tasks "
        f"({len(fan_out['methods'])} methods x "
        f"{len(fan_out['trainer_seeds'])} seeds, "
        f"n={fan_out['n_samples']})",
        f"  serial  {fan_out['serial_s']:8.3f} s",
    ]
    for count, entry in fan_out["workers"].items():
        flag = "bit-identical" if entry["bit_identical"] else "MISMATCH"
        lines.append(
            f"  jobs={count:<3s}{entry['seconds']:8.3f} s"
            f"   speedup {entry['speedup_vs_serial']:5.2f}x   {flag}"
        )
    tree = results["tree_fit"]
    line = f"tree_fit {tree['median_s'] * 1e3:9.3f} ms"
    if "speedup_vs_seed" in tree:
        line += f"   speedup vs seed {tree['speedup_vs_seed']:5.2f}x"
    lines.append(line)
    return "\n".join(lines)
