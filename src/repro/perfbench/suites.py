"""Microbenchmark suite: vectorised kernels vs the preserved seed kernels.

Five tracked benchmarks, each reporting median-of-k seconds (and, where a
seed baseline exists, the seed time and the speedup ratio):

* ``histogram_build`` — fused-index :class:`HistogramBuilder` vs the
  per-feature ``bincount`` loop, full-matrix node at (n, d, max_bins).
* ``tree_fit`` — one leaf-wise tree grown with the shared builder vs the
  seed tree (loop histograms + sliced matrix).
* ``leaf_predict`` — flattened ``O(depth × n)`` routing vs the
  ``O(n_nodes × n)`` per-node mask loop.
* ``leaf_encode`` — direct-CSR multi-hot assembly vs the COO round-trip.
* ``trainer_epoch`` — end-to-end ``LightMIRMTrainer`` epochs over encoded
  environments (no seed baseline; tracked for trajectory).

``run_suite`` returns a JSON-compatible dict; ``write_bench_json`` stamps
it with machine info and writes ``BENCH_gbdt.json``.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import sys
from dataclasses import dataclass

import numpy as np

from repro.gbdt.binning import QuantileBinner
from repro.gbdt.histogram import HistogramBuilder
from repro.gbdt.leaf_encoder import encode_leaf_matrix
from repro.gbdt.tree import DecisionTree, TreeParams
from repro.perfbench import reference
from repro.timing import Measurement, measure

__all__ = [
    "BenchConfig",
    "effective_cpu_count",
    "machine_info",
    "run_suite",
    "summarize",
    "write_bench_json",
]

#: Format version of BENCH_gbdt.json.
BENCH_FORMAT = 1


@dataclass(frozen=True)
class BenchConfig:
    """Sizes and repetition counts of one suite run.

    The default is the tracked configuration (n=50k, d=50, 64 bins);
    :meth:`smoke` shrinks everything so the whole suite runs in well under
    a second for CI rot-protection.
    """

    n_rows: int = 50_000
    n_features: int = 50
    max_bins: int = 64
    n_leaves: int = 31
    n_trees: int = 20
    repeats: int = 5
    warmup: int = 1
    epoch_rows: int = 4_000
    epochs: int = 3
    seed: int = 0

    @classmethod
    def smoke(cls) -> "BenchConfig":
        """Tiny sizes: every benchmark exercised once, nothing timed long."""
        return cls(n_rows=300, n_features=5, max_bins=8, n_leaves=7,
                   n_trees=3, repeats=1, warmup=0, epoch_rows=300, epochs=1)


def _synthetic_problem(config: BenchConfig):
    """Binned matrix + logloss-shaped gradient statistics."""
    rng = np.random.default_rng(config.seed)
    x = rng.standard_normal((config.n_rows, config.n_features))
    logit = 1.5 * x[:, 0] - x[:, 1] + 0.5 * x[:, 2] * x[:, 0]
    y = (rng.random(config.n_rows) < 1 / (1 + np.exp(-logit))).astype(float)
    binner = QuantileBinner(max_bins=config.max_bins).fit(x)
    binned = binner.transform(x)
    prob = np.full(config.n_rows, float(y.mean()))
    gradients = prob - y
    hessians = np.maximum(prob * (1.0 - prob), 1e-12)
    return binned, gradients, hessians


def _entry(name: str, vectorized: Measurement,
           seed: Measurement | None = None, **extra) -> dict:
    entry = {
        "median_s": vectorized.median_seconds,
        "best_s": vectorized.best_seconds,
        "repeats": vectorized.repeats,
        **extra,
    }
    if seed is not None:
        entry["seed_median_s"] = seed.median_seconds
        entry["speedup_vs_seed"] = (
            seed.median_seconds / vectorized.median_seconds
            if vectorized.median_seconds > 0 else float("inf")
        )
    return entry


def bench_histogram(config: BenchConfig) -> dict:
    """Full-node histogram build, vectorised vs seed."""
    binned, gradients, hessians = _synthetic_problem(config)
    rows = np.arange(config.n_rows)
    builder = HistogramBuilder(binned, config.max_bins)

    vec = measure(
        lambda: builder.build(gradients, hessians, rows),
        repeats=config.repeats, warmup=config.warmup,
    )
    seed = measure(
        lambda: reference.build_histogram_seed(
            binned, gradients, hessians, rows, config.max_bins
        ),
        repeats=config.repeats, warmup=config.warmup,
    )
    return _entry("histogram_build", vec, seed,
                  n=config.n_rows, d=config.n_features,
                  max_bins=config.max_bins)


def bench_tree_fit(config: BenchConfig) -> dict:
    """One leaf-wise tree fit, shared-builder vs seed loop kernels."""
    binned, gradients, hessians = _synthetic_problem(config)
    params = TreeParams(max_leaves=config.n_leaves, min_child_samples=20)
    builder = HistogramBuilder(binned, config.max_bins)

    vec = measure(
        lambda: DecisionTree(params).fit(
            binned, gradients, hessians, max_bins=config.max_bins,
            builder=builder,
        ),
        repeats=config.repeats, warmup=config.warmup,
    )
    seed = measure(
        lambda: reference.SeedDecisionTree(params).fit(
            binned, gradients, hessians, max_bins=config.max_bins
        ),
        repeats=config.repeats, warmup=config.warmup,
    )
    return _entry("tree_fit", vec, seed,
                  n=config.n_rows, d=config.n_features,
                  max_leaves=config.n_leaves)


def bench_leaf_predict(config: BenchConfig) -> dict:
    """Routing all rows through one tree, flattened vs node-mask loop."""
    binned, gradients, hessians = _synthetic_problem(config)
    params = TreeParams(max_leaves=config.n_leaves, min_child_samples=20)
    tree = DecisionTree(params).fit(binned, gradients, hessians,
                                    max_bins=config.max_bins)

    vec = measure(
        lambda: tree.predict_leaf(binned),
        repeats=config.repeats, warmup=config.warmup,
    )
    seed = measure(
        lambda: reference.predict_leaf_seed(tree, binned),
        repeats=config.repeats, warmup=config.warmup,
    )
    return _entry("leaf_predict", vec, seed,
                  n=config.n_rows, n_leaves=tree.n_leaves)


def bench_leaf_encode(config: BenchConfig) -> dict:
    """Multi-hot CSR assembly, direct indptr/indices vs COO round-trip."""
    rng = np.random.default_rng(config.seed)
    leaves_per_tree = np.full(config.n_trees, config.n_leaves)
    offsets = np.concatenate(([0], np.cumsum(leaves_per_tree)))
    leaf_matrix = rng.integers(
        0, config.n_leaves, size=(config.n_rows, config.n_trees),
        dtype=np.int64,
    )

    vec = measure(
        lambda: encode_leaf_matrix(leaf_matrix, offsets),
        repeats=config.repeats, warmup=config.warmup,
    )
    seed = measure(
        lambda: reference.encode_leaves_seed(leaf_matrix, offsets),
        repeats=config.repeats, warmup=config.warmup,
    )
    return _entry("leaf_encode", vec, seed,
                  n=config.n_rows, n_trees=config.n_trees)


def bench_trainer_epoch(config: BenchConfig) -> dict:
    """End-to-end LightMIRM epochs over GBDT-encoded environments."""
    from repro.core.config import LightMIRMConfig
    from repro.core.lightmirm import LightMIRMTrainer
    from repro.data.generator import GeneratorConfig, LoanDataGenerator
    from repro.pipeline.extractor import GBDTFeatureExtractor

    dataset = LoanDataGenerator(
        GeneratorConfig(n_samples=config.epoch_rows, total_features=40,
                        n_spurious=4, seed=config.seed)
    ).generate()
    extractor = GBDTFeatureExtractor().fit(dataset)
    environments = extractor.encode_environments(dataset)

    def run() -> None:
        trainer = LightMIRMTrainer(
            LightMIRMConfig(seed=config.seed, n_epochs=config.epochs)
        )
        trainer.fit(environments)

    vec = measure(run, repeats=max(1, config.repeats // 2),
                  warmup=min(config.warmup, 1))
    return {
        "median_s": vec.median_seconds,
        "best_s": vec.best_seconds,
        "repeats": vec.repeats,
        "per_epoch_s": vec.median_seconds / config.epochs,
        "n": config.epoch_rows,
        "epochs": config.epochs,
        "n_environments": len(environments),
    }


#: Benchmark id -> runner, in report order.
BENCHMARKS = {
    "histogram_build": bench_histogram,
    "tree_fit": bench_tree_fit,
    "leaf_predict": bench_leaf_predict,
    "leaf_encode": bench_leaf_encode,
    "trainer_epoch": bench_trainer_epoch,
}


def run_suite(config: BenchConfig | None = None,
              only: list[str] | None = None) -> dict:
    """Run the microbenchmarks and return their JSON-compatible results.

    Args:
        config: Sizes/repeats; defaults to the tracked configuration.
        only: Optional subset of :data:`BENCHMARKS` keys.

    Returns:
        Mapping benchmark id -> result entry.
    """
    config = config or BenchConfig()
    names = list(BENCHMARKS) if only is None else list(only)
    unknown = set(names) - set(BENCHMARKS)
    if unknown:
        raise ValueError(f"unknown benchmarks: {sorted(unknown)}")
    return {name: BENCHMARKS[name](config) for name in names}


def effective_cpu_count() -> int | None:
    """CPUs this process may actually run on, not just what exists.

    ``os.cpu_count()`` reports the machine; CI runners and containers
    usually pin processes to a subset via the scheduler affinity mask, so
    parallel speedups must be read against ``len(os.sched_getaffinity(0))``.
    Falls back to ``os.cpu_count()`` where affinity is unsupported.
    """
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count()


def machine_info() -> dict:
    """The hardware/software context a timing is only comparable within."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "cpu_count": os.cpu_count(),
        "effective_cpu_count": effective_cpu_count(),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
    }


def write_bench_json(
    path: str | pathlib.Path,
    results: dict,
    config: BenchConfig,
) -> dict:
    """Write the tracked ``BENCH_gbdt.json`` payload and return it."""
    payload = {
        "format": BENCH_FORMAT,
        "config": {
            "n_rows": config.n_rows,
            "n_features": config.n_features,
            "max_bins": config.max_bins,
            "n_leaves": config.n_leaves,
            "n_trees": config.n_trees,
            "repeats": config.repeats,
        },
        "machine": machine_info(),
        "benchmarks": results,
    }
    pathlib.Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def summarize(results: dict) -> str:
    """Human-readable one-line-per-benchmark rendering."""
    lines = []
    for name, entry in results.items():
        line = f"{name:16s} {entry['median_s'] * 1e3:9.3f} ms"
        if "speedup_vs_seed" in entry:
            line += (
                f"   seed {entry['seed_median_s'] * 1e3:9.3f} ms"
                f"   speedup {entry['speedup_vs_seed']:6.2f}x"
            )
        lines.append(line)
    return "\n".join(lines)
