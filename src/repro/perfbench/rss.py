"""Cross-platform peak-memory probe for the scale benchmarks.

The scale suite's acceptance question is "does peak RSS stay bounded
below naive full materialisation?" — which must be *measured*, not
estimated.  Two sources, in preference order:

* ``resource.getrusage(RUSAGE_SELF).ru_maxrss`` — the OS-maintained
  lifetime high-water mark of resident memory.  It cannot be reset, so
  callers that want a per-stage number run the stage in a fresh
  subprocess (which is what :func:`repro.perfbench.scale.run_scale_suite`
  does).  Linux reports kilobytes, macOS bytes.
* ``tracemalloc`` — a Python-heap-only fallback for platforms without
  ``resource`` (e.g. Windows).  It undercounts (no interpreter/C-library
  overhead) but still captures the NumPy buffers that dominate this
  workload; the ``source`` field records which probe produced a number
  so payloads are never silently mixed.
"""

from __future__ import annotations

import sys
import tracemalloc

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None  # type: ignore[assignment]

__all__ = ["PeakMemoryProbe", "read_peak_rss_bytes"]


def _ru_maxrss_bytes() -> int:
    """Lifetime peak RSS of this process in bytes (POSIX only)."""
    ru_maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(ru_maxrss)
    return int(ru_maxrss) * 1024


def read_peak_rss_bytes() -> int | None:
    """Peak RSS so far, in bytes; ``None`` where ``resource`` is missing."""
    if resource is None:
        return None
    return _ru_maxrss_bytes()


class PeakMemoryProbe:
    """Context manager capturing peak memory over its ``with`` block.

    Usage::

        with PeakMemoryProbe() as probe:
            run_workload()
        print(probe.peak_bytes, probe.source)

    With ``resource`` available the number is the process-lifetime RSS
    high-water mark at exit (so wrap the whole workload of a fresh
    process, not a late stage of a long-lived one); otherwise it is the
    traced Python-heap peak over the block via ``tracemalloc``.
    """

    def __init__(self) -> None:
        self.peak_bytes: int | None = None
        #: "getrusage" or "tracemalloc", set at exit.
        self.source: str | None = None
        self._own_tracemalloc = False

    def __enter__(self) -> "PeakMemoryProbe":
        if resource is None and not tracemalloc.is_tracing():
            tracemalloc.start()
            tracemalloc.reset_peak()
            self._own_tracemalloc = True
        return self

    def __exit__(self, *exc) -> None:
        if resource is not None:
            self.peak_bytes = _ru_maxrss_bytes()
            self.source = "getrusage"
            return
        _, peak = tracemalloc.get_traced_memory()
        if self._own_tracemalloc:
            tracemalloc.stop()
        self.peak_bytes = int(peak)
        self.source = "tracemalloc"
