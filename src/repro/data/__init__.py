"""Synthetic auto-loan platform data: schema, provinces, drift, generation."""

from repro.data.dataset import EnvironmentData, LoanDataset, group_by_environment
from repro.data.generator import (
    GeneratorConfig,
    LoanDataGenerator,
    generate_default_dataset,
)
from repro.data.provinces import (
    ProvinceProfile,
    ProvinceRegistry,
    default_registry,
    extended_registry,
)
from repro.data.schema import (
    VEHICLE_TYPES,
    CausalRole,
    FeatureBlock,
    FeatureSpec,
    LoanFeatureSchema,
    build_schema,
)
from repro.data.splits import (
    TrainTestSplit,
    iid_split,
    temporal_split,
    validation_split,
)

__all__ = [
    "EnvironmentData",
    "LoanDataset",
    "group_by_environment",
    "GeneratorConfig",
    "LoanDataGenerator",
    "generate_default_dataset",
    "ProvinceProfile",
    "ProvinceRegistry",
    "default_registry",
    "extended_registry",
    "VEHICLE_TYPES",
    "CausalRole",
    "FeatureBlock",
    "FeatureSpec",
    "LoanFeatureSchema",
    "build_schema",
    "TrainTestSplit",
    "iid_split",
    "temporal_split",
    "validation_split",
]
