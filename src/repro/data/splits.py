"""Train/test splits used in the paper's evaluation.

Two protocols appear in Section IV:

* **Temporal split** (main protocol): train on 2016-2019, test on 2020.
  This is where covariate and concept shift bite (Section IV-B).
* **i.i.d. split** (Table VI): random split ignoring time, which isolates
  fairness across provinces from temporal drift.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import LoanDataset

__all__ = ["TrainTestSplit", "temporal_split", "iid_split", "validation_split"]

TRAIN_YEARS = (2016, 2017, 2018, 2019)
TEST_YEAR = 2020


@dataclass(frozen=True)
class TrainTestSplit:
    """A train/test pair of datasets."""

    train: LoanDataset
    test: LoanDataset

    def __post_init__(self) -> None:
        if self.train.n_samples == 0 or self.test.n_samples == 0:
            raise ValueError("both split halves must be non-empty")


def temporal_split(dataset: LoanDataset) -> TrainTestSplit:
    """The paper's main protocol: 2016-2019 train, 2020 test."""
    return TrainTestSplit(
        train=dataset.filter_years(TRAIN_YEARS),
        test=dataset.filter_years((TEST_YEAR,)),
    )


def iid_split(
    dataset: LoanDataset, test_fraction: float = 0.25, seed: int = 0
) -> TrainTestSplit:
    """Random split ignoring time (Table VI's i.i.d. setting).

    Args:
        dataset: Full dataset.
        test_fraction: Fraction of rows held out for testing.
        seed: RNG seed for the permutation.

    Returns:
        A :class:`TrainTestSplit` with disjoint random halves.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = np.random.default_rng(seed)
    order = rng.permutation(dataset.n_samples)
    n_test = max(1, int(round(dataset.n_samples * test_fraction)))
    test_idx = order[:n_test]
    train_idx = order[n_test:]
    return TrainTestSplit(
        train=dataset.select(train_idx), test=dataset.select(test_idx)
    )


def validation_split(
    dataset: LoanDataset, validation_fraction: float = 0.2, seed: int = 0
) -> TrainTestSplit:
    """Random split of a training set into fit/validation parts.

    Stratifies nothing beyond the row permutation; used for GBDT early
    stopping, which only needs an unbiased holdout.
    """
    return iid_split(dataset, test_fraction=validation_fraction, seed=seed)
