"""Synthetic auto-loan platform generator (Chery FS substitute).

The real evaluation data (1.4M records, 210 features, 2016-2020, province-
labelled) is proprietary, so we generate a synthetic population that
reproduces the *mechanisms* the paper's experiments rely on:

1. **Heterogeneous environments.** Provinces differ in volume (two orders of
   magnitude), base default rate (economics) and customer mix.
2. **Invariant causal structure.** A latent creditworthiness factor drives
   both the invariant features (debt burden, credit history, ...) and the
   default outcome with the *same* coefficients everywhere — the signal an
   invariant predictor should isolate.
3. **Spurious anti-causal signals.** "Regional signal" features are generated
   *from* the label with province-dependent polarity: positive in the
   populous coastal provinces, negative in the small western ones.  A pooled
   ERM fit exploits the majority polarity and therefore ranks backwards in
   the minority provinces — producing exactly the Fig 1 unfairness.
4. **Temporal drift.** Vehicle mixes drift by year (Fig 4), Guangdong's
   volume halves in 2020 (Fig 10, covariate shift), spurious signals decay in
   2020 and break in COVID-hit Hubei H1 (Fig 11, concept shift).

The generator is deterministic given its seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.data.dataset import LoanDataset
from repro.data.provinces import YEARS, ProvinceRegistry, default_registry
from repro.data.schema import CausalRole, LoanFeatureSchema, build_schema
from repro.data.shifts import covid_default_shift, spurious_strength, vehicle_mix
from repro.numerics import sigmoid as _sigmoid

__all__ = [
    "DatasetChunk",
    "GeneratorConfig",
    "LoanDataGenerator",
    "generate_default_dataset",
]

#: Factor loadings of the invariant features on the latent creditworthiness
#: factor, in schema order.  Signs follow credit-risk intuition (higher debt
#: burden -> riskier, longer history -> safer); magnitudes control how
#: informative each observed feature is about the latent factor.
_INVARIANT_LOADINGS = np.array(
    [0.80, -0.55, -0.25, -0.40, 0.70, 0.62, 0.50, -0.42, 0.20, -0.45]
)

#: Effect of the latent creditworthiness factor on the default logit.
_LATENT_EFFECT = 1.7

#: Context coefficients (loan term, loan amount, vehicle age) — weak and
#: invariant.
_CONTEXT_COEFS = np.array([0.15, 0.2, 0.1])

#: Vehicle-type risk offsets, in VEHICLE_TYPES order.  Trucks and used cars
#: carry slightly higher commercial/asset risk; the effect is invariant.
_VEHICLE_COEFS = np.array([0.0, -0.05, 0.0, 0.18, 0.25])


@dataclass(frozen=True)
class GeneratorConfig:
    """All knobs of the synthetic platform.

    Attributes:
        n_samples: Total records across all years.
        total_features: Width of the record (paper: 210).
        n_spurious: Number of regional spurious features.
        seed: Master RNG seed; the generator is fully deterministic given it.
        base_default_logit: Intercept of the default model; the default of
            -2.6 gives a ~15% average default rate similar to subprime
            auto-loan books.
        spurious_base_strength: Strength of the anti-causal signal in
            training years (before the 2020 decay).
        economic_effect: Logit shift per unit of province economic index.
            Positive by default: underwriting is stricter in the weaker
            provinces, so their *approved* books carry lower observed default
            rates (a selection effect), while the richer provinces' looser
            approvals raise theirs.  This decouples a province's BCE level
            from its ranking difficulty — the trap GroupDRO falls into.
        label_noise: Std of extra logit noise (irreducible risk).
        years: Calendar years to generate.
        registry: Province registry (defaults to the standard 12 provinces).
    """

    n_samples: int = 40_000
    total_features: int = 60
    n_spurious: int = 8
    seed: int = 20230612
    base_default_logit: float = -2.6
    spurious_base_strength: float = 0.7
    economic_effect: float = 0.6
    label_noise: float = 0.35
    years: tuple[int, ...] = YEARS
    registry: ProvinceRegistry = field(default_factory=default_registry)

    @staticmethod
    def paper_scale() -> "GeneratorConfig":
        """Config matching the paper's data dimensions (1.4M x 210)."""
        return GeneratorConfig(n_samples=1_400_000, total_features=210,
                               n_spurious=16)

    @staticmethod
    def small(seed: int = 0) -> "GeneratorConfig":
        """Small config for unit tests."""
        return GeneratorConfig(n_samples=4_000, total_features=40,
                               n_spurious=4, seed=seed)


@dataclass(frozen=True)
class DatasetChunk:
    """One streamed block of generated records from a single platform cell.

    Every chunk comes from exactly one (province, year, half) cell, so
    streaming consumers (binning, packing, per-environment statistics) get
    homogeneous blocks without re-grouping.  ``row_indices`` are the rows'
    positions in the canonical one-shot record order: scattering every
    chunk of a fixed-seed stream into a preallocated ``(n_samples, d)``
    matrix reproduces :meth:`LoanDataGenerator.generate` bit for bit.

    ``features``/``labels`` may be views into a per-cell buffer that is
    reused as iteration advances; copy them if they must outlive the next
    iteration step.
    """

    features: np.ndarray
    labels: np.ndarray
    row_indices: np.ndarray
    province: str
    year: int
    half: int

    @property
    def n_rows(self) -> int:
        return self.labels.shape[0]


class LoanDataGenerator:
    """Deterministic sampler of synthetic loan application records."""

    def __init__(self, config: GeneratorConfig | None = None):
        self.config = config or GeneratorConfig()
        self.schema: LoanFeatureSchema = build_schema(
            total_features=self.config.total_features,
            n_spurious=self.config.n_spurious,
        )
        self._invariant_cols = self.schema.columns_with_role(CausalRole.INVARIANT)
        self._context_cols = [
            c for c in self.schema.columns_with_role(CausalRole.CONTEXT)
            if not self.schema.specs[c].is_categorical_indicator
        ]
        self._vehicle_cols = self.schema.vehicle_indicator_columns()
        self._spurious_cols = self.schema.columns_with_role(CausalRole.SPURIOUS)
        self._noise_cols = self.schema.columns_with_role(CausalRole.NOISE)

    def generate(self, chunk_rows: int | None = None) -> LoanDataset:
        """Sample the full multi-year dataset.

        Implemented as scatter-assembly over :meth:`generate_chunks`, so
        the one-shot and streamed paths share one RNG consumption order:
        the returned dataset is bit-identical for every ``chunk_rows``
        (tested), and callers that cannot hold ``(n, d)`` float64 rows
        should consume :meth:`generate_chunks` directly instead.

        Args:
            chunk_rows: Internal chunk size; affects only peak memory of
                intermediate blocks, never the output.
        """
        cfg = self.config
        features = np.zeros((cfg.n_samples, self.schema.n_features))
        labels = np.zeros(cfg.n_samples)
        provinces = np.empty(cfg.n_samples, dtype=object)
        years = np.empty(cfg.n_samples, dtype=np.int64)
        halves = np.empty(cfg.n_samples, dtype=np.int64)
        for chunk in self.generate_chunks(chunk_rows=chunk_rows):
            rows = chunk.row_indices
            features[rows] = chunk.features
            labels[rows] = chunk.labels
            provinces[rows] = chunk.province
            years[rows] = chunk.year
            halves[rows] = chunk.half
        return LoanDataset(
            features=features,
            labels=labels,
            provinces=provinces,
            years=years,
            halves=halves,
            schema=self.schema,
        )

    def generate_chunks(
        self, chunk_rows: int | None = None
    ) -> Iterator[DatasetChunk]:
        """Stream the dataset as per-cell blocks, never materialising it.

        The record→cell assignment arrays (``O(n)`` small dtypes) are drawn
        first, exactly as the historical one-shot path did; the feature
        blocks are then generated cell by cell in registry × year × half
        order, consuming the master RNG in the same sequence.  Peak memory
        is the assignment arrays plus one cell's float64 buffer (the
        largest cell, not the dataset), regardless of ``chunk_rows``.

        Args:
            chunk_rows: Maximum rows per yielded chunk; cells larger than
                this are sliced (views into the cell buffer).  ``None``
                yields one chunk per cell.

        Yields:
            :class:`DatasetChunk` blocks whose ``row_indices`` scatter back
            to the canonical one-shot record order.
        """
        if chunk_rows is not None and chunk_rows < 1:
            raise ValueError("chunk_rows must be >= 1")
        rng = np.random.default_rng(self.config.seed)
        cfg = self.config

        # --- assign each record a (year, half, province) cell -------------
        years = rng.choice(np.array(cfg.years), size=cfg.n_samples)
        halves = rng.integers(1, 3, size=cfg.n_samples)
        provinces = np.empty(cfg.n_samples, dtype=object)
        province_names = np.array(cfg.registry.names, dtype=object)
        for year in cfg.years:
            mask = years == year
            weights = np.array(cfg.registry.weights_for_year(year), dtype=np.float64)
            weights /= weights.sum()
            provinces[mask] = rng.choice(province_names, size=int(mask.sum()),
                                         p=weights)

        # Generate cell by cell so the per-cell drift parameters apply.
        for province in cfg.registry:
            province_mask = provinces == province.name
            for year in cfg.years:
                for half in (1, 2):
                    mask = province_mask & (years == year) & (halves == half)
                    n_cell = int(mask.sum())
                    if n_cell == 0:
                        continue
                    cell_x, cell_y = self._generate_cell(
                        rng, province, year, half, n_cell
                    )
                    row_indices = np.flatnonzero(mask)
                    step = n_cell if chunk_rows is None else chunk_rows
                    for start in range(0, n_cell, step):
                        stop = min(start + step, n_cell)
                        yield DatasetChunk(
                            features=cell_x[start:stop],
                            labels=cell_y[start:stop],
                            row_indices=row_indices[start:stop],
                            province=province.name,
                            year=int(year),
                            half=half,
                        )

    def _generate_cell(self, rng, province, year: int, half: int, n: int):
        """Generate ``n`` records for one (province, year, half) cell."""
        cfg = self.config
        x = np.zeros((n, self.schema.n_features))

        # Latent creditworthiness (higher = riskier) drives the default.
        # Observed invariant features are noisy measurements of it: the
        # loading pattern is identical in every cell (the invariant
        # relationship IRM should recover), but measurement noise grows with
        # the province's noise_scale (poorer data quality in small western
        # provinces lowers every model's ceiling there).
        latent = rng.standard_normal(n)
        measurement_noise = (
            0.6
            * province.noise_scale
            * rng.standard_normal((n, len(self._invariant_cols)))
        )
        invariant = latent[:, None] * _INVARIANT_LOADINGS[None, :] + measurement_noise
        x[:, self._invariant_cols] = invariant

        # Context features: loan terms, mildly shaped by province economy.
        context = rng.standard_normal((n, len(self._context_cols)))
        context[:, 1] += 0.3 * province.economic_index  # larger loans where richer
        x[:, self._context_cols] = context

        # Vehicle type one-hot from the drifting per-province mix.
        mix = vehicle_mix(province, year)
        vehicle_idx = rng.choice(len(mix), size=n, p=mix)
        x[np.arange(n), np.asarray(self._vehicle_cols)[vehicle_idx]] = 1.0

        # Default label from the invariant structural equation on the latent
        # factor (not on the noisy measurements).
        logit = (
            cfg.base_default_logit
            + _LATENT_EFFECT * latent
            + context @ _CONTEXT_COEFS
            + _VEHICLE_COEFS[vehicle_idx]
            + cfg.economic_effect * province.economic_index
            + covid_default_shift(province, year, half)
            + cfg.label_noise * rng.standard_normal(n)
        )
        y = (rng.random(n) < _sigmoid(logit)).astype(np.float64)

        # Spurious regional signals: generated FROM the label with
        # cell-dependent polarity (anti-causal).  Strength varies slightly
        # per feature so the GBDT sees several correlated proxies.
        strength = spurious_strength(province, year, half,
                                     cfg.spurious_base_strength)
        n_spur = len(self._spurious_cols)
        per_feature = strength * (1.0 - 0.08 * np.arange(n_spur))
        spurious = (
            (2.0 * y[:, None] - 1.0) * per_feature[None, :]
            + 0.9 * rng.standard_normal((n, n_spur))
        )
        x[:, self._spurious_cols] = spurious

        # Pure-noise bureau fields.
        if self._noise_cols:
            x[:, self._noise_cols] = rng.standard_normal((n, len(self._noise_cols)))
        return x, y




def generate_default_dataset(
    n_samples: int = 40_000, seed: int = 20230612
) -> LoanDataset:
    """Convenience wrapper: generate the standard benchmark dataset."""
    return LoanDataGenerator(GeneratorConfig(n_samples=n_samples, seed=seed)).generate()
