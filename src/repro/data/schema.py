"""Feature schema for synthetic auto-loan application records.

The Chery FS dataset has 210-dimensional records drawn from three blocks the
paper names explicitly: basic applicant information (e.g. age), information
from banks (e.g. count of past defaults), and other information (e.g. the
vehicle).  We mirror that structure with a declarative schema so the
generator, the GBDT feature extractor and the evaluation code all agree on
column meaning.

Columns additionally carry a *causal role*, which the generator uses:

* ``invariant`` — causally drives default identically in every province
  (e.g. debt burden).  An invariant predictor should rely on these.
* ``spurious`` — anti-causally correlated with default with a
  province/year-varying polarity (the correlation ERM overfits to).
* ``context`` — environment descriptors (vehicle type, loan terms) with a
  weak but invariant effect.
* ``noise`` — pure distractors, filling out the record to the configured
  width like the long tail of bureau fields in the real data.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "FeatureBlock",
    "CausalRole",
    "FeatureSpec",
    "LoanFeatureSchema",
    "VEHICLE_TYPES",
    "build_schema",
]

#: Vehicle type categories observed on the platform (Fig 4 plots their mix).
VEHICLE_TYPES = ("new_sedan", "new_suv", "new_mpv", "used_car", "trailer_truck")


class FeatureBlock(str, enum.Enum):
    """Origin of a feature in the loan application record."""

    APPLICANT = "applicant"
    BANK = "bank"
    VEHICLE = "vehicle"
    BUREAU = "bureau"


class CausalRole(str, enum.Enum):
    """How the generator wires a feature to the default label."""

    INVARIANT = "invariant"
    SPURIOUS = "spurious"
    CONTEXT = "context"
    NOISE = "noise"


@dataclass(frozen=True)
class FeatureSpec:
    """One column of the design matrix.

    Attributes:
        name: Unique column name.
        block: Which record block it belongs to.
        role: Causal role in the generating process.
        is_categorical_indicator: True for one-hot columns (vehicle type).
    """

    name: str
    block: FeatureBlock
    role: CausalRole
    is_categorical_indicator: bool = False


#: Invariant drivers of default: (name, block).  These mirror standard credit
#: risk factors and keep the same coefficient in every environment.
_INVARIANT_FEATURES: tuple[tuple[str, FeatureBlock], ...] = (
    ("debt_to_income", FeatureBlock.APPLICANT),
    ("monthly_income_log", FeatureBlock.APPLICANT),
    ("age_norm", FeatureBlock.APPLICANT),
    ("employment_years", FeatureBlock.APPLICANT),
    ("past_default_count", FeatureBlock.BANK),
    ("delinquency_12m", FeatureBlock.BANK),
    ("credit_utilization", FeatureBlock.BANK),
    ("credit_history_len", FeatureBlock.BUREAU),
    ("open_credit_lines", FeatureBlock.BUREAU),
    ("down_payment_ratio", FeatureBlock.VEHICLE),
)

#: Weak invariant context features (loan terms / vehicle economics).
_CONTEXT_FEATURES: tuple[tuple[str, FeatureBlock], ...] = (
    ("loan_term_months", FeatureBlock.VEHICLE),
    ("loan_amount_log", FeatureBlock.VEHICLE),
    ("vehicle_age", FeatureBlock.VEHICLE),
)


class LoanFeatureSchema:
    """Ordered feature schema shared by generator, models and evaluation.

    The column order is: invariant block, context block, vehicle-type one-hot
    indicators, spurious block, then noise block.
    """

    def __init__(self, n_spurious: int, n_noise: int):
        if n_spurious < 1:
            raise ValueError("need at least one spurious feature")
        if n_noise < 0:
            raise ValueError("n_noise must be non-negative")
        specs: list[FeatureSpec] = []
        for name, block in _INVARIANT_FEATURES:
            specs.append(FeatureSpec(name, block, CausalRole.INVARIANT))
        for name, block in _CONTEXT_FEATURES:
            specs.append(FeatureSpec(name, block, CausalRole.CONTEXT))
        for vehicle in VEHICLE_TYPES:
            specs.append(
                FeatureSpec(
                    f"vehicle_is_{vehicle}",
                    FeatureBlock.VEHICLE,
                    CausalRole.CONTEXT,
                    is_categorical_indicator=True,
                )
            )
        for i in range(n_spurious):
            specs.append(
                FeatureSpec(f"regional_signal_{i:02d}", FeatureBlock.BUREAU,
                            CausalRole.SPURIOUS)
            )
        for i in range(n_noise):
            specs.append(
                FeatureSpec(f"bureau_field_{i:03d}", FeatureBlock.BUREAU,
                            CausalRole.NOISE)
            )
        self._specs = tuple(specs)
        self._index = {spec.name: i for i, spec in enumerate(self._specs)}

    @property
    def specs(self) -> tuple[FeatureSpec, ...]:
        return self._specs

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(spec.name for spec in self._specs)

    @property
    def n_features(self) -> int:
        return len(self._specs)

    def column(self, name: str) -> int:
        """Index of a named column; raises ``KeyError`` if absent."""
        return self._index[name]

    def columns_with_role(self, role: CausalRole) -> list[int]:
        """Indices of every column carrying the given causal role."""
        return [i for i, spec in enumerate(self._specs) if spec.role == role]

    def vehicle_indicator_columns(self) -> list[int]:
        """Indices of the vehicle-type one-hot columns, in VEHICLE_TYPES order."""
        return [self._index[f"vehicle_is_{v}"] for v in VEHICLE_TYPES]


def build_schema(total_features: int = 60, n_spurious: int = 8) -> LoanFeatureSchema:
    """Build a schema padded with noise features to the requested width.

    Args:
        total_features: Total column count (paper scale is 210; the default
            of 60 keeps experiments laptop-fast while preserving all blocks).
        n_spurious: Number of spurious (province-polarised) features.

    Returns:
        A :class:`LoanFeatureSchema` with ``total_features`` columns.

    Raises:
        ValueError: If ``total_features`` is too small to hold the fixed
            blocks plus one spurious column.
    """
    fixed = len(_INVARIANT_FEATURES) + len(_CONTEXT_FEATURES) + len(VEHICLE_TYPES)
    n_noise = total_features - fixed - n_spurious
    if n_noise < 0:
        raise ValueError(
            f"total_features={total_features} cannot hold {fixed} fixed + "
            f"{n_spurious} spurious columns"
        )
    return LoanFeatureSchema(n_spurious=n_spurious, n_noise=n_noise)
