"""Dataset containers: loan records plus environment (province) structure."""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Iterator, Mapping

import numpy as np

from repro.data.schema import CausalRole, LoanFeatureSchema

__all__ = ["LoanDataset", "EnvironmentData", "group_by_environment"]


@dataclass(frozen=True)
class EnvironmentData:
    """The slice of a dataset belonging to one environment (province)."""

    name: str
    features: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        if self.features.shape[0] != self.labels.shape[0]:
            raise ValueError(
                f"environment {self.name!r}: {self.features.shape[0]} feature rows "
                f"vs {self.labels.shape[0]} labels"
            )

    @property
    def n_samples(self) -> int:
        return self.labels.shape[0]

    @property
    def default_rate(self) -> float:
        return float(self.labels.mean()) if self.labels.size else float("nan")


class LoanDataset:
    """Immutable table of loan applications with province/time annotations.

    Rows carry the raw feature matrix, binary default labels, and the three
    grouping columns the experiments slice on: province, year and half-year.
    """

    def __init__(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        provinces: np.ndarray,
        years: np.ndarray,
        halves: np.ndarray,
        schema: LoanFeatureSchema,
    ):
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64)
        provinces = np.asarray(provinces)
        years = np.asarray(years, dtype=np.int64)
        halves = np.asarray(halves, dtype=np.int64)
        n = features.shape[0]
        for name, arr in (
            ("labels", labels),
            ("provinces", provinces),
            ("years", years),
            ("halves", halves),
        ):
            if arr.shape[0] != n:
                raise ValueError(f"{name} has {arr.shape[0]} rows, features has {n}")
        if features.ndim != 2:
            raise ValueError("features must be 2-D")
        if features.shape[1] != schema.n_features:
            raise ValueError(
                f"features have {features.shape[1]} columns, "
                f"schema expects {schema.n_features}"
            )
        if not np.all(np.isin(halves, (1, 2))):
            raise ValueError("halves must contain only 1 or 2")
        self.features = features
        self.labels = labels
        self.provinces = provinces
        self.years = years
        self.halves = halves
        self.schema = schema
        for arr in (self.features, self.labels, self.provinces, self.years,
                    self.halves):
            arr.setflags(write=False)

    @property
    def n_samples(self) -> int:
        return self.features.shape[0]

    @property
    def n_features(self) -> int:
        return self.features.shape[1]

    @property
    def default_rate(self) -> float:
        return float(self.labels.mean()) if self.n_samples else float("nan")

    def province_names(self) -> list[str]:
        """Distinct provinces present, sorted."""
        return sorted(np.unique(self.provinces).tolist())

    def select(self, mask: np.ndarray) -> "LoanDataset":
        """Row-subset the dataset with a boolean mask or index array."""
        return LoanDataset(
            features=self.features[mask],
            labels=self.labels[mask],
            provinces=self.provinces[mask],
            years=self.years[mask],
            halves=self.halves[mask],
            schema=self.schema,
        )

    def filter_years(self, years: list[int] | tuple[int, ...]) -> "LoanDataset":
        """Rows whose year is in ``years``."""
        return self.select(np.isin(self.years, years))

    def filter_province(self, province: str) -> "LoanDataset":
        """Rows from one province."""
        return self.select(self.provinces == province)

    def filter_half(self, half: int) -> "LoanDataset":
        """Rows from one half-year (1 = Jan-Jun, 2 = Jul-Dec)."""
        return self.select(self.halves == half)

    def environments(self) -> list[EnvironmentData]:
        """Split into per-province environments, sorted by name."""
        return [
            EnvironmentData(name, self.features[self.provinces == name],
                            self.labels[self.provinces == name])
            for name in self.province_names()
        ]

    def labels_by_environment(self) -> dict[str, np.ndarray]:
        """Mapping province -> label vector (for metric aggregation)."""
        return {e.name: e.labels for e in self.environments()}

    def province_share_by_year(self) -> dict[int, dict[str, float]]:
        """Year -> {province -> share of that year's volume} (Fig 10 data)."""
        shares: dict[int, dict[str, float]] = {}
        for year in sorted(np.unique(self.years).tolist()):
            year_mask = self.years == year
            total = int(year_mask.sum())
            year_provinces = self.provinces[year_mask]
            shares[year] = {
                name: float(np.sum(year_provinces == name)) / total
                for name in self.province_names()
            }
        return shares

    def save(self, path: str | pathlib.Path) -> None:
        """Persist the dataset (and enough schema info to restore it) as NPZ."""
        n_spurious = len(self.schema.columns_with_role(CausalRole.SPURIOUS))
        n_noise = len(self.schema.columns_with_role(CausalRole.NOISE))
        np.savez_compressed(
            pathlib.Path(path),
            features=self.features,
            labels=self.labels,
            provinces=self.provinces.astype(str),
            years=self.years,
            halves=self.halves,
            schema_spec=np.array([n_spurious, n_noise], dtype=np.int64),
        )

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "LoanDataset":
        """Restore a dataset written by :meth:`save`."""
        with np.load(pathlib.Path(path), allow_pickle=False) as archive:
            n_spurious, n_noise = archive["schema_spec"].tolist()
            schema = LoanFeatureSchema(n_spurious=n_spurious, n_noise=n_noise)
            return cls(
                features=archive["features"],
                labels=archive["labels"],
                provinces=archive["provinces"].astype(object),
                years=archive["years"],
                halves=archive["halves"],
                schema=schema,
            )

    def __iter__(self) -> Iterator[EnvironmentData]:
        return iter(self.environments())

    def __repr__(self) -> str:
        return (
            f"LoanDataset(n={self.n_samples}, d={self.n_features}, "
            f"provinces={len(self.province_names())}, "
            f"default_rate={self.default_rate:.3f})"
        )


def group_by_environment(
    features: np.ndarray, labels: np.ndarray, groups: np.ndarray
) -> Mapping[str, EnvironmentData]:
    """Group arbitrary (features, labels) rows by a group key array."""
    groups = np.asarray(groups)
    result: dict[str, EnvironmentData] = {}
    for name in sorted(np.unique(groups).tolist()):
        mask = groups == name
        result[str(name)] = EnvironmentData(str(name), features[mask], labels[mask])
    return result
