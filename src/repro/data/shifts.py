"""Temporal drift processes: vehicle-mix drift, spurious decay, COVID shock.

Section IV-B of the paper documents three kinds of drift in the platform data
that our generator must reproduce:

* **Vehicle-mix drift (Fig 4):** the distribution of purchased vehicle types
  changes year over year (trailer trucks grow with trade, used cars shrink
  as the platform moves upmarket).
* **Covariate shift (Fig 10):** province volume shares change over time —
  handled by :class:`~repro.data.provinces.ProvinceProfile.weight_by_year`.
* **Concept shift (Fig 11 and Section IV-B):** P(y|x) itself changes in 2020.
  COVID raises base default rates where exposure is high (Hubei H1), and the
  spurious regional correlations weaken because the underlying business
  patterns break.
"""

from __future__ import annotations

import numpy as np

from repro.data.provinces import ProvinceProfile
from repro.data.schema import VEHICLE_TYPES

__all__ = [
    "vehicle_mix",
    "covid_default_shift",
    "spurious_strength",
    "BASE_VEHICLE_MIX",
]

#: Platform-wide vehicle mix in the first observed year (2016), in
#: VEHICLE_TYPES order: new_sedan, new_suv, new_mpv, used_car, trailer_truck.
BASE_VEHICLE_MIX = np.array([0.38, 0.17, 0.08, 0.27, 0.10])

#: Per-year drift added to the base mix; the platform shifts from used cars
#: toward SUVs and trucks (Fig 4 shows mixes differ clearly by year).
_MIX_DRIFT_PER_YEAR = np.array([-0.015, 0.018, 0.004, -0.022, 0.015])

FIRST_YEAR = 2016


def vehicle_mix(profile: ProvinceProfile, year: int) -> np.ndarray:
    """Vehicle-type probabilities for one province in one year.

    Combines the platform-wide yearly drift with the province's structural
    tilts (trade hubs buy more trucks; less developed areas more used cars).

    Args:
        profile: Province profile supplying the tilts.
        year: Calendar year (>= 2016).

    Returns:
        Probability vector over :data:`~repro.data.schema.VEHICLE_TYPES`.
    """
    years_elapsed = max(0, year - FIRST_YEAR)
    mix = BASE_VEHICLE_MIX + years_elapsed * _MIX_DRIFT_PER_YEAR
    # Province tilts move mass into trucks / used cars from new sedans.
    mix = mix.copy()
    mix[VEHICLE_TYPES.index("trailer_truck")] += profile.truck_tilt
    mix[VEHICLE_TYPES.index("used_car")] += profile.used_car_tilt
    mix[VEHICLE_TYPES.index("new_sedan")] -= profile.truck_tilt + profile.used_car_tilt
    mix = np.clip(mix, 0.01, None)
    return mix / mix.sum()


def covid_default_shift(profile: ProvinceProfile, year: int, half: int) -> float:
    """Additive logit shift on the default rate from the COVID shock.

    The shock hits in the first half of 2020 proportionally to the province's
    exposure and rolls back in the second half (the paper: Hubei "got hit by
    the epidemic [in H1] and started to get on track in the second half").

    Args:
        profile: Province profile (supplies ``covid_exposure``).
        year: Calendar year.
        half: 1 for January-June, 2 for July-December.

    Returns:
        Logit-scale shift (0 outside 2020 or for unexposed provinces).
    """
    if year != 2020 or profile.covid_exposure == 0.0:
        return 0.0
    if half == 1:
        return 1.2 * profile.covid_exposure
    return 0.15 * profile.covid_exposure


def spurious_strength(profile: ProvinceProfile, year: int, half: int,
                      base_strength: float) -> float:
    """Effective strength of the spurious (anti-causal) signal.

    In the training years the spurious correlation is strong; in 2020 the
    business patterns that produced it weaken (concept shift), and in
    COVID-hit provinces it breaks almost entirely during H1.  A model that
    leaned on the signal (ERM) therefore degrades on the 2020 test year.

    Args:
        profile: Province profile (polarity and COVID exposure).
        year: Calendar year.
        half: Half-year, 1 or 2.
        base_strength: Platform-wide signal strength in training years.

    Returns:
        Signed effective strength for this (province, year, half).
    """
    strength = base_strength * profile.spurious_polarity
    if year >= 2020:
        strength *= 0.7
        # Business-shift break: where the platform's operations contracted
        # (the paper: Guangdong's volume halves "because of the shift in
        # focus of Chery FS's operations"), the regional business patterns
        # behind the spurious signal break along with the volume.
        trajectory = profile.weight_by_year.get(2020, 1.0)
        if trajectory < 1.0:
            strength *= trajectory
        if half == 1 and profile.covid_exposure > 0.0:
            strength *= 1.0 - 0.9 * min(profile.covid_exposure, 1.0)
    return strength
