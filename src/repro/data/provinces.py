"""Province registry: the environments of the LightMIRM experiments.

Each province is a subpopulation ("environment" in IRM terms) with its own

* volume weight and a per-year trajectory (Guangdong's share halves in 2020,
  Fig 10),
* economic index shifting the base default rate,
* spurious-signal polarity/strength (the anti-causal correlation that makes
  ERM unfair, Fig 1),
* vehicle-type mix tilt (the Fig 4 drift interacts with this), and
* COVID exposure (Hubei's 2020-H1 concept shift, Fig 11).

The default registry models a recognisable cross-section of the provinces
named in the paper, from the dominant Guangdong down to underrepresented
Xinjiang.  Weights are relative, not probabilities; the generator normalises
them per year.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "ProvinceProfile",
    "ProvinceRegistry",
    "default_registry",
    "extended_registry",
]

YEARS = (2016, 2017, 2018, 2019, 2020)


@dataclass(frozen=True)
class ProvinceProfile:
    """Static description of one province (environment).

    Attributes:
        name: Province name, unique in the registry.
        base_weight: Relative sampling weight (volume of applications).
        weight_by_year: Optional per-year multiplier on ``base_weight``
            (e.g. Guangdong's collapse in 2020).
        economic_index: Standardised economic level; shifts the default-rate
            intercept (lower economy -> slightly higher base default rate).
        spurious_polarity: Sign/strength multiplier of the spurious signal in
            this province.  Populous provinces carry a strong positive
            polarity a pooled ERM fit exploits; in the underrepresented
            provinces the polarity fades to ~0 (mildly negative in Xinjiang),
            so the pooled model's spurious reliance is pure noise — or
            misleading — exactly where data is scarce.
        truck_tilt: Additive tilt toward trailer-truck purchases (trade hubs).
        used_car_tilt: Additive tilt toward used cars (less developed areas).
        covid_exposure: Strength of the 2020-H1 concept shift (Hubei ~ 1).
        noise_scale: Multiplier on the irreducible label noise.  Data quality
            degrades in the underrepresented provinces (sparser bureau
            coverage, informal incomes), so their Bayes error is higher —
            the reason even a perfectly fair model scores a lower KS there,
            and the trap worst-group-loss methods (GroupDRO) fall into:
            they spend capacity on risk no model can explain.
    """

    name: str
    base_weight: float
    economic_index: float
    spurious_polarity: float
    truck_tilt: float = 0.0
    used_car_tilt: float = 0.0
    covid_exposure: float = 0.0
    noise_scale: float = 1.0
    weight_by_year: dict[int, float] = field(default_factory=dict)

    def weight_for_year(self, year: int) -> float:
        """Sampling weight of this province in a given year."""
        return self.base_weight * self.weight_by_year.get(year, 1.0)


class ProvinceRegistry:
    """Ordered, name-indexed collection of province profiles."""

    def __init__(self, profiles: list[ProvinceProfile]):
        if not profiles:
            raise ValueError("registry needs at least one province")
        names = [p.name for p in profiles]
        if len(set(names)) != len(names):
            raise ValueError("duplicate province names in registry")
        self._profiles = tuple(profiles)
        self._by_name = {p.name: p for p in profiles}

    def __len__(self) -> int:
        return len(self._profiles)

    def __iter__(self):
        return iter(self._profiles)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self._profiles)

    def get(self, name: str) -> ProvinceProfile:
        """Look up a province by name; raises ``KeyError`` if unknown."""
        return self._by_name[name]

    def weights_for_year(self, year: int) -> list[float]:
        """Relative sampling weights of all provinces in a year."""
        return [p.weight_for_year(year) for p in self._profiles]

    def subset(self, names: list[str]) -> "ProvinceRegistry":
        """Registry restricted to the given provinces, preserving order."""
        missing = [n for n in names if n not in self._by_name]
        if missing:
            raise KeyError(f"unknown provinces: {missing}")
        keep = set(names)
        return ProvinceRegistry([p for p in self._profiles if p.name in keep])


def default_registry() -> ProvinceRegistry:
    """The standard 12-province environment set used by all experiments.

    Sizes span two orders of magnitude so the minimax-fairness phenomenon of
    Fig 1 appears: Guangdong dominates, Xinjiang/Qinghai are underrepresented.
    Spurious polarity decays from 1.0 in the populous coastal provinces to
    near-zero (mildly negative in Xinjiang) in the small western ones: a
    pooled ERM fit leans on the strong majority signal, which is mostly
    noise — or misleading — exactly in the underrepresented provinces.
    """
    guangdong_trajectory = {2016: 1.0, 2017: 1.05, 2018: 1.1, 2019: 1.05, 2020: 0.5}
    return ProvinceRegistry(
        [
            ProvinceProfile(
                "Guangdong", base_weight=24.0, economic_index=1.2,
                spurious_polarity=1.0, truck_tilt=0.10,
                weight_by_year=guangdong_trajectory,
            ),
            ProvinceProfile(
                "Jiangsu", base_weight=15.0, economic_index=1.0,
                spurious_polarity=1.0, truck_tilt=0.06,
            ),
            ProvinceProfile(
                "Shandong", base_weight=13.0, economic_index=0.6,
                spurious_polarity=0.9, truck_tilt=0.08,
            ),
            ProvinceProfile(
                "Henan", base_weight=11.0, economic_index=0.1,
                spurious_polarity=0.9, used_car_tilt=0.05,
            ),
            ProvinceProfile(
                "Sichuan", base_weight=9.0, economic_index=0.0,
                spurious_polarity=0.8, used_car_tilt=0.04,
            ),
            ProvinceProfile(
                "Hubei", base_weight=8.0, economic_index=0.2,
                spurious_polarity=0.8, covid_exposure=1.0,
            ),
            ProvinceProfile(
                "Anhui", base_weight=7.0, economic_index=-0.1,
                spurious_polarity=0.7, used_car_tilt=0.03,
            ),
            ProvinceProfile(
                "Heilongjiang", base_weight=4.0, economic_index=-0.4,
                spurious_polarity=0.5, used_car_tilt=0.06, noise_scale=1.3,
            ),
            ProvinceProfile(
                "Yunnan", base_weight=3.0, economic_index=-0.6,
                spurious_polarity=0.35, used_car_tilt=0.08, noise_scale=1.5,
            ),
            ProvinceProfile(
                "Gansu", base_weight=2.4, economic_index=-0.8,
                spurious_polarity=0.1, used_car_tilt=0.10, noise_scale=1.6,
            ),
            ProvinceProfile(
                "Qinghai", base_weight=1.8, economic_index=-0.9,
                spurious_polarity=0.0, used_car_tilt=0.11, noise_scale=1.7,
            ),
            ProvinceProfile(
                "Xinjiang", base_weight=1.6, economic_index=-1.0,
                spurious_polarity=-0.1, truck_tilt=0.04, used_car_tilt=0.09,
                noise_scale=1.7,
            ),
        ]
    )


#: Additional provinces for the extended (paper-scale environment count)
#: registry: (name, base_weight, economic_index, spurious_polarity,
#: truck_tilt, used_car_tilt, noise_scale).
_EXTENDED_PROFILES: tuple[tuple[str, float, float, float, float, float, float], ...] = (
    ("Zhejiang", 14.0, 1.1, 1.0, 0.07, 0.00, 1.0),
    ("Hebei", 10.0, 0.3, 0.9, 0.05, 0.03, 1.0),
    ("Hunan", 9.0, 0.2, 0.85, 0.03, 0.04, 1.0),
    ("Fujian", 8.0, 0.7, 0.9, 0.05, 0.01, 1.0),
    ("Shaanxi", 6.0, 0.0, 0.75, 0.02, 0.04, 1.1),
    ("Liaoning", 6.0, -0.1, 0.7, 0.04, 0.05, 1.1),
    ("Jiangxi", 5.0, -0.2, 0.7, 0.02, 0.05, 1.1),
    ("Guangxi", 5.0, -0.3, 0.6, 0.03, 0.06, 1.2),
    ("Chongqing", 5.0, 0.3, 0.8, 0.03, 0.03, 1.0),
    ("Shanxi", 4.0, -0.3, 0.6, 0.06, 0.05, 1.2),
    ("Jilin", 3.0, -0.4, 0.5, 0.03, 0.06, 1.3),
    ("Guizhou", 2.5, -0.7, 0.3, 0.02, 0.09, 1.5),
    ("Neimenggu", 2.0, -0.5, 0.25, 0.07, 0.06, 1.5),
    ("Ningxia", 1.5, -0.8, 0.1, 0.03, 0.10, 1.7),
)


def extended_registry() -> ProvinceRegistry:
    """A 26-province registry matching the paper's environment count.

    Table II samples S in {5, 10, 20} provinces out of the full set, which
    only makes sense when M is well above 20 — the platform operates in
    most Chinese provinces.  This registry extends :func:`default_registry`
    with 14 more provinces on the same economic/polarity/noise gradients.
    """
    extra = [
        ProvinceProfile(
            name,
            base_weight=weight,
            economic_index=econ,
            spurious_polarity=polarity,
            truck_tilt=truck,
            used_car_tilt=used,
            noise_scale=noise,
        )
        for name, weight, econ, polarity, truck, used, noise in _EXTENDED_PROFILES
    ]
    return ProvinceRegistry(list(default_registry()) + extra)
